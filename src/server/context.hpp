// Host-abstraction boundary for protocol engines.
//
// Engines (POCC, Cure*, HA-POCC, and the client protocol) are pure state
// machines: they never touch a socket, a thread or a wall clock. Everything
// environmental flows through this interface, implemented by
//   * the discrete-event host (cluster/sim_node.*) — deterministic
//     reproduction of the paper's figures, and
//   * the threaded runtime host (runtime/*) — a real in-process store.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace pocc::server {

class DurabilityLog;

/// Environment provided to a server engine.
class Context {
 public:
  virtual ~Context() = default;

  /// Read this node's physical clock, advancing it (strictly monotonic).
  /// Used when creating update timestamps (Alg. 2 line 8).
  virtual Timestamp clock_now() = 0;

  /// Observe the physical clock without creating a timestamp.
  virtual Timestamp clock_peek() = 0;

  /// Reference time (virtual time in the simulator, steady clock in the
  /// runtime). Used only for measurements and timeouts, never for protocol
  /// timestamps.
  virtual Timestamp time() = 0;

  /// Send a message to another server over the FIFO network.
  virtual void send(NodeId to, proto::Message m) = 0;

  /// Reply to a client session.
  virtual void reply(ClientId client, proto::Message m) = 0;

  /// Request an `on_timer(timer_id)` callback after `delay`. One-shot; engines
  /// re-arm periodic timers themselves.
  virtual void set_timer(Duration delay, std::uint64_t timer_id) = 0;

  /// Write-ahead log for mutations that must survive a crash, or nullptr when
  /// the host provides no durability (see server/durability.hpp). The engine
  /// appends; the host syncs and holds outputs until the sync lands.
  virtual DurabilityLog* durability() { return nullptr; }
};

}  // namespace pocc::server
