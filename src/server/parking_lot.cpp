#include "server/parking_lot.hpp"

#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace pocc::server {

std::uint64_t ParkingLot::park(Timestamp now, ReadyFn ready, ResumeFn resume,
                               Duration deadline_us, TimeoutFn on_timeout) {
  POCC_ASSERT(ready != nullptr && resume != nullptr);
  Entry e;
  e.ticket = next_ticket_++;
  e.parked_at = now;
  e.deadline = deadline_us > 0 ? now + deadline_us : kTimestampMax;
  e.ready = std::move(ready);
  e.resume = std::move(resume);
  e.on_timeout = std::move(on_timeout);
  parked_.push_back(std::move(e));
  return parked_.back().ticket;
}

std::size_t ParkingLot::poke(Timestamp now) {
  // Collect ready entries first: resume callbacks may park new requests or
  // advance state that makes further entries ready; poke() is re-entrant-safe
  // because it operates on a snapshot.
  std::vector<Entry> ready_now;
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->ready()) {
      ready_now.push_back(std::move(*it));
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  for (Entry& e : ready_now) {
    e.resume(now - e.parked_at);
  }
  return ready_now.size();
}

std::size_t ParkingLot::expire(Timestamp now) {
  std::vector<Entry> expired;
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->deadline <= now) {
      expired.push_back(std::move(*it));
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  for (Entry& e : expired) {
    if (e.on_timeout) e.on_timeout(now - e.parked_at);
  }
  return expired.size();
}

Timestamp ParkingLot::next_deadline() const {
  Timestamp earliest = kTimestampMax;
  for (const Entry& e : parked_) {
    if (e.deadline < earliest) earliest = e.deadline;
  }
  return earliest;
}

void ParkingLot::drain(Timestamp now) {
  std::vector<Entry> all(std::make_move_iterator(parked_.begin()),
                         std::make_move_iterator(parked_.end()));
  parked_.clear();
  for (Entry& e : all) {
    if (e.on_timeout) e.on_timeout(now - e.parked_at);
  }
}

}  // namespace pocc::server
