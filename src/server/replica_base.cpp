#include "server/replica_base.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/assert.hpp"
#include "server/durability.hpp"
#include "store/key_space.hpp"

namespace pocc::server {

ReplicaBase::ReplicaBase(NodeId self, const TopologyConfig& topology,
                         const ProtocolConfig& protocol,
                         const ServiceConfig& service, Context& ctx)
    : self_(self),
      topology_(topology),
      protocol_(protocol),
      service_(service),
      ctx_(ctx),
      vv_(topology.num_dcs) {
  POCC_ASSERT(self.dc < topology.num_dcs);
  POCC_ASSERT(self.part < topology.partitions_per_dc);
}

void ReplicaBase::start() {
  ctx_.set_timer(protocol_.heartbeat_interval_us, kTimerHeartbeat);
  ctx_.set_timer(protocol_.gc_interval_us, kTimerGc);
}

void ReplicaBase::recover() {
  lot_.clear();
  pending_tx_.clear();
  gc_reports_.clear();
  clock_wakeup_armed_ = false;
  armed_clock_target_ = kTimestampMax;
}

Duration ReplicaBase::handle_message(NodeId from, proto::Message m) {
  work_ = 0;
  std::visit(
      [&](auto&& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, proto::GetReq>) {
          on_get(msg);
        } else if constexpr (std::is_same_v<T, proto::PutReq>) {
          on_put(msg);
        } else if constexpr (std::is_same_v<T, proto::RoTxReq>) {
          on_ro_tx(msg);
        } else if constexpr (std::is_same_v<T, proto::Replicate>) {
          on_replicate(msg);
        } else if constexpr (std::is_same_v<T, proto::Heartbeat>) {
          on_heartbeat(from, msg);
        } else if constexpr (std::is_same_v<T, proto::SliceReq>) {
          on_slice_req(from, msg);
        } else if constexpr (std::is_same_v<T, proto::SliceReply>) {
          on_slice_reply(from, msg);
        } else if constexpr (std::is_same_v<T, proto::GcReport>) {
          on_gc_report(msg);
        } else if constexpr (std::is_same_v<T, proto::GcVector>) {
          on_gc_vector(msg);
        } else if constexpr (std::is_same_v<T, proto::StabReport>) {
          on_stab_report(msg);
        } else if constexpr (std::is_same_v<T, proto::GssBroadcast>) {
          on_gss_broadcast(msg);
        } else if constexpr (std::is_same_v<T, proto::RecoveryReq>) {
          on_recovery_req(msg);
        } else if constexpr (std::is_same_v<T, proto::RecoveryVersion>) {
          on_recovery_version(msg);
        } else if constexpr (std::is_same_v<T, proto::RecoveryDone>) {
          on_recovery_done(msg);
        } else {
          POCC_ASSERT_MSG(false, "server received unexpected message type");
        }
      },
      std::move(m));
  return work_;
}

Duration ReplicaBase::on_timer(std::uint64_t timer_id) {
  work_ = 0;
  switch (timer_id) {
    case kTimerHeartbeat: {
      // Peer-recovery mute: until every RecoveryDone landed, this replica's
      // pre-crash sends may still be holes on the peers — a heartbeat now
      // would raise their VV[us] past versions only on_recovery_done()'s
      // push-back will deliver. The first heartbeat after the gate opens
      // FIFO-follows those RecoveryVersions on every link, so the promise
      // "every update <= ts was sent" holds again.
      if (recovering_dcs_ > 0 &&
          ctx_.time() < recovery_heartbeat_gate_until_) {
        ctx_.set_timer(protocol_.heartbeat_interval_us, kTimerHeartbeat);
        break;
      }
      // Alg. 2 lines 19-26: if no PUT advanced VV[m] for Δ, broadcast the
      // local clock so remote version vectors keep moving.
      const Timestamp ct = ctx_.clock_peek();
      if (ct >= vv_[local_dc()] + protocol_.heartbeat_interval_us) {
        vv_[local_dc()] = ctx_.clock_now();
        // The raise must be durable before any peer acts on the broadcast:
        // a heartbeat promises "every update <= ts has been sent", which
        // after a crash means "…is in the WAL" (the host holds the sends
        // below until this append is synced).
        if (DurabilityLog* dur = ctx_.durability()) dur->log_vv(vv_);
        for (DcId j = 0; j < topology_.num_dcs; ++j) {
          if (j == local_dc()) continue;
          charge(service_.heartbeat_us);
          ctx_.send(NodeId{j, self_.part},
                    proto::Heartbeat{local_dc(), vv_[local_dc()]});
        }
        poke();
      }
      ctx_.set_timer(protocol_.heartbeat_interval_us, kTimerHeartbeat);
      break;
    }
    case kTimerGc: {
      // §IV-B: report the entry-wise minimum snapshot still needed locally.
      VersionVector watermark = gc_watermark();
      for (const auto& [id, tx] : pending_tx_) {
        watermark.merge_min(tx.tv);
      }
      charge(service_.gc_round_us);
      const NodeId aggregator{local_dc(), 0};
      if (is_gc_aggregator()) {
        on_gc_report(proto::GcReport{self_, watermark});
      } else {
        ctx_.send(aggregator, proto::GcReport{self_, watermark});
      }
      ctx_.set_timer(protocol_.gc_interval_us, kTimerGc);
      break;
    }
    case kTimerClockWait: {
      clock_wakeup_armed_ = false;
      poke();
      break;
    }
    case kTimerExpire: {
      lot_.expire(ctx_.time());
      if (!lot_.empty() && lot_.next_deadline() != kTimestampMax) {
        ctx_.set_timer(
            std::max<Duration>(lot_.next_deadline() - ctx_.time(), 1),
            kTimerExpire);
      }
      break;
    }
    default:
      POCC_ASSERT_MSG(false, "unknown timer id");
  }
  return work_;
}

// ---------------------------------------------------------------- GET ----

Duration ReplicaBase::on_get(const proto::GetReq& req) {
  charge(service_.get_us);
  if (get_ready(req)) {
    serve_get(req, 0);
    return work_;
  }
  // Alg. 2 line 2: the client potentially depends on an item this node has
  // not received yet — stall the request until the dependency arrives.
  lot_.park(
      ctx_.time(), [this, req] { return get_ready(req); },
      [this, req](Duration blocked_us) { serve_get(req, blocked_us); },
      park_deadline(),
      [this, client = req.client](Duration blocked_us) {
        on_park_timeout(client, blocked_us);
      });
  arm_expiry();
  return work_;
}

void ReplicaBase::serve_get(const proto::GetReq& req, Duration blocked_us) {
  proto::ReadItem item = choose_get_version(req);
  ++gets_served_;
  blocking_.record_op(blocked_us);
  staleness_.record_read(item.fresher_versions, item.unmerged_versions);
  proto::GetReply reply;
  reply.client = req.client;
  reply.item = std::move(item);
  reply.blocked_us = blocked_us;
  reply.op_id = req.op_id;
  ctx_.reply(req.client, std::move(reply));
}

// ---------------------------------------------------------------- PUT ----

bool ReplicaBase::put_ready(const proto::PutReq& req) const {
  if (protocol_.put_dependency_wait &&
      !vv_.dominates(req.dv, skip_local())) {
    return false;
  }
  // Alg. 2 line 7: the new version's timestamp must exceed every dependency.
  return req.dv.max_entry() < ctx_.clock_peek();
}

Duration ReplicaBase::on_put(const proto::PutReq& req) {
  charge(service_.put_us);
  if (put_ready(req)) {
    serve_put(req, 0);
    return work_;
  }
  if (req.dv.max_entry() >= ctx_.clock_peek()) {
    arm_clock_wakeup(req.dv.max_entry());
  }
  lot_.park(
      ctx_.time(), [this, req] { return put_ready(req); },
      [this, req](Duration blocked_us) { serve_put(req, blocked_us); },
      park_deadline(),
      [this, client = req.client](Duration blocked_us) {
        on_park_timeout(client, blocked_us);
      });
  arm_expiry();
  return work_;
}

void ReplicaBase::serve_put(const proto::PutReq& req, Duration blocked_us) {
  const Timestamp ut = ctx_.clock_now();
  POCC_ASSERT_MSG(ut > req.dv.max_entry(),
                  "update timestamp must dominate its dependencies");
  vv_[local_dc()] = ut;  // Alg. 2 line 8

  store::Version v;
  v.key = req.key;
  v.value = req.value;
  v.sr = local_dc();
  v.ut = ut;
  v.dv = req.dv;
  v.opt_origin = mark_opt_origin(req);
  store_.insert(v);
  if (DurabilityLog* dur = ctx_.durability()) dur->log_version(v);
  if (version_observer_) version_observer_(req.client, req.op_id, v);

  // Alg. 2 lines 12-14: replicate to the partition's siblings. FIFO channels
  // + monotonic timestamps give replication in update-timestamp order.
  for (DcId j = 0; j < topology_.num_dcs; ++j) {
    if (j == local_dc()) continue;
    charge(service_.replicate_us);
    ctx_.send(NodeId{j, self_.part}, proto::Replicate{v});
  }

  ++puts_served_;
  blocking_.record_op(blocked_us);
  proto::PutReply reply;
  reply.client = req.client;
  reply.key = req.key;
  reply.ut = ut;
  reply.sr = local_dc();
  reply.blocked_us = blocked_us;
  reply.op_id = req.op_id;
  ctx_.reply(req.client, std::move(reply));
  poke();  // VV[m] and the clock advanced; parked slices/puts may be ready
}

// ------------------------------------------------------- replication ----

Duration ReplicaBase::on_replicate(const proto::Replicate& msg) {
  charge(service_.replicate_us);
  const store::Version& v = msg.version;
  // After begin_peer_recovery() the VV merges peer RecoveryDone vectors, so a
  // live FIFO link that lags the merged VV legitimately delivers versions
  // below it; they are idempotent duplicates of recovered state.
  POCC_ASSERT_MSG(fifo_tolerant_ || v.ut >= vv_[v.sr],
                  "replication channel must deliver in timestamp order");
  store_.insert(v);
  if (DurabilityLog* dur = ctx_.durability()) dur->log_version(v);
  vv_.raise(v.sr, v.ut);  // Alg. 2 line 18
  poke();
  return work_;
}

Duration ReplicaBase::on_heartbeat(NodeId from, const proto::Heartbeat& msg) {
  (void)from;
  charge(service_.heartbeat_us);
  POCC_ASSERT(msg.src_dc < topology_.num_dcs);
  vv_.raise(msg.src_dc, msg.ts);  // Alg. 2 line 28
  // Durable so a restart does not regress the VV below what clients already
  // observed through served reads (GET waits are VV-driven).
  if (DurabilityLog* dur = ctx_.durability()) dur->log_vv(vv_);
  poke();
  return work_;
}

// ----------------------------------------------------- crash recovery ----

void ReplicaBase::restore_version(const store::Version& v) {
  POCC_ASSERT(v.sr < topology_.num_dcs);
  store_.insert(v);
  vv_.raise(v.sr, v.ut);
}

void ReplicaBase::restore_vv(const VersionVector& vv) {
  if (vv.size() == vv_.size()) vv_.merge_max(vv);
}

void ReplicaBase::begin_peer_recovery(Duration heartbeat_gate_us) {
  fifo_tolerant_ = true;
  recovering_dcs_ = 0;
  recovery_heartbeat_gate_until_ = ctx_.time() + heartbeat_gate_us;
  for (DcId j = 0; j < topology_.num_dcs; ++j) {
    if (j == local_dc()) continue;
    ++recovering_dcs_;
    ctx_.send(NodeId{j, self_.part}, proto::RecoveryReq{self_, vv_});
  }
}

Duration ReplicaBase::on_recovery_req(const proto::RecoveryReq& req) {
  charge(service_.gc_round_us);
  // Stream every version fresher than the crashed sibling's durable cut —
  // its own source replica included: versions it created and replicated out
  // may have been acknowledged here before its fsync covered them. GC never
  // tears a hole into this: only versions superseded by a fresher one of the
  // same key are collected, so the per-key freshest state is always present.
  const auto cut = [&](DcId sr) {
    return sr < req.durable_vv.size() ? req.durable_vv[sr] : 0;
  };
  for (const auto& [key, chain] : store_.chains()) {
    for (const store::Version& v : chain.versions()) {
      if (v.ut > cut(v.sr)) {
        charge(service_.replicate_us);
        ctx_.send(req.from, proto::RecoveryVersion{v});
      }
    }
  }
  // DONE carries this node's VV: only merged by the receiver *after* every
  // RecoveryVersion above landed (same FIFO link), so the VV never promises
  // versions still in flight.
  ctx_.send(req.from, proto::RecoveryDone{self_, vv_});
  return work_;
}

Duration ReplicaBase::on_recovery_version(const proto::RecoveryVersion& msg) {
  charge(service_.replicate_us);
  if (msg.version.sr >= topology_.num_dcs) return work_;  // corrupt peer
  store_.insert(msg.version);  // idempotent on (ut, sr)
  if (DurabilityLog* dur = ctx_.durability()) dur->log_version(msg.version);
  ++versions_recovered_;
  return work_;
}

Duration ReplicaBase::on_recovery_done(const proto::RecoveryDone& msg) {
  charge(service_.heartbeat_us);
  if (msg.vv.size() == vv_.size()) {
    // Push back our own durable suffix the peer never received — Replicates
    // that died in this process's batcher outbox at crash time. Tolerantly
    // restored on the peer (RecoveryVersion, not Replicate).
    const Timestamp peer_has = msg.vv[local_dc()];
    for (const auto& [key, chain] : store_.chains()) {
      for (const store::Version& v : chain.versions()) {
        if (v.sr == local_dc() && v.ut > peer_has) {
          charge(service_.replicate_us);
          ctx_.send(msg.from, proto::RecoveryVersion{v});
        }
      }
    }
    vv_.merge_max(msg.vv);
    if (DurabilityLog* dur = ctx_.durability()) dur->log_vv(vv_);
  }
  if (recovering_dcs_ > 0) --recovering_dcs_;
  poke();
  return work_;
}

// -------------------------------------------------------------- RO-TX ----

Duration ReplicaBase::on_ro_tx(const proto::RoTxReq& req) {
  // Alg. 2 lines 29-38: this node coordinates the transaction.
  std::unordered_map<PartitionId, std::vector<KeyId>> groups;
  for (const KeyId key : req.keys) {
    groups[store::KeySpace::global().partition(key,
                                               topology_.partitions_per_dc,
                                               topology_.partition_scheme)]
        .push_back(key);
  }
  charge(service_.tx_coord_us +
         service_.tx_coord_per_part_us *
             static_cast<Duration>(groups.size()));

  const VersionVector tv = compute_tx_snapshot(req);
  const std::uint64_t tx_id =
      (static_cast<std::uint64_t>(self_.dc) << 48) |
      (static_cast<std::uint64_t>(self_.part) << 32) | next_tx_seq_++;

  PendingTx tx;
  tx.client = req.client;
  tx.op_id = req.op_id;
  tx.tv = tv;
  tx.awaiting = static_cast<std::uint32_t>(groups.size());
  pending_tx_.emplace(tx_id, std::move(tx));

  for (auto& [part, keys] : groups) {
    if (part == self_.part) {
      // Local slice: same wait/visibility rules, no network hop.
      dispatch_slice(tx_id, self_, keys, tv, req.pessimistic);
    } else {
      proto::SliceReq slice;
      slice.tx_id = tx_id;
      slice.coordinator = self_;
      slice.keys = std::move(keys);
      slice.tv = tv;
      slice.pessimistic = req.pessimistic;
      ctx_.send(NodeId{local_dc(), part}, std::move(slice));
    }
  }
  return work_;
}

void ReplicaBase::dispatch_slice(std::uint64_t tx_id, NodeId coordinator,
                                 const std::vector<KeyId>& keys,
                                 const VersionVector& tv, bool pessimistic) {
  if (slice_ready(tv)) {
    serve_slice(tx_id, coordinator, keys, tv, pessimistic, 0);
    return;
  }
  // Alg. 2 line 40: wait until this node has installed every update in the
  // snapshot.
  lot_.park(
      ctx_.time(), [this, tv] { return slice_ready(tv); },
      [this, tx_id, coordinator, keys, tv, pessimistic](Duration blocked_us) {
        serve_slice(tx_id, coordinator, keys, tv, pessimistic, blocked_us);
      },
      park_deadline(),
      [this, tx_id, coordinator](Duration blocked_us) {
        on_slice_timeout(tx_id, coordinator, blocked_us);
      });
  arm_expiry();
}

Duration ReplicaBase::on_slice_req(NodeId from, const proto::SliceReq& req) {
  (void)from;
  dispatch_slice(req.tx_id, req.coordinator, req.keys, req.tv,
                 req.pessimistic);
  return work_;
}

void ReplicaBase::serve_slice(std::uint64_t tx_id, NodeId coordinator,
                              const std::vector<KeyId>& keys,
                              const VersionVector& tv, bool pessimistic,
                              Duration blocked_us) {
  charge(service_.slice_us);
  std::vector<proto::ReadItem> items;
  items.reserve(keys.size());
  for (const KeyId key : keys) {
    charge(service_.slice_per_key_us);
    items.push_back(read_in_snapshot(key, tv, pessimistic));
  }
  ++slices_served_;
  blocking_.record_op(blocked_us);

  if (coordinator == self_) {
    accumulate_slice(tx_id, std::move(items), blocked_us);
  } else {
    proto::SliceReply reply;
    reply.tx_id = tx_id;
    reply.items = std::move(items);
    reply.blocked_us = blocked_us;
    ctx_.send(coordinator, std::move(reply));
  }
}

proto::ReadItem ReplicaBase::read_in_snapshot(KeyId key,
                                              const VersionVector& tv,
                                              bool pessimistic) {
  proto::ReadItem item;
  item.key = key;
  const store::VersionChain* chain = store_.find(key);
  if (chain == nullptr) {
    // Implicit initial version: empty value, no dependencies (always visible).
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
    return item;
  }
  const auto lookup = chain->freshest_where([&](const store::Version& v) {
    if (pessimistic && !visible_to_pessimistic(v, tv)) return false;
    return slice_visible(v, tv, pessimistic);
  });
  // Fuzz triage hook (docs/TESTING.md): POCC_DEBUG_KEY=<key> dumps every
  // snapshot read of that key that found no visible version — replaying a
  // failing seed with this set shows the chain/TV/VV the decision saw.
  static const char* debug_key = std::getenv("POCC_DEBUG_KEY");
  if (debug_key != nullptr && lookup.version == nullptr &&
      store::key_name(key) == debug_key) {
    std::fprintf(stderr,
                 "[dbg] slice miss key=%s node=%s t=%lld tv=%s vv=%s chain:\n",
                 store::key_name(key).c_str(), self_.to_string().c_str(),
                 static_cast<long long>(ctx_.time()), tv.to_string().c_str(),
                 vv_.to_string().c_str());
    for (const store::Version& v : chain->versions()) {
      std::fprintf(stderr, "[dbg]   ut=%lld sr=%u dv=%s\n",
                   static_cast<long long>(v.ut), v.sr,
                   v.dv.to_string().c_str());
    }
  }
  charge(service_.version_hop_us * static_cast<Duration>(lookup.hops));
  const std::uint32_t unmerged = count_unmerged(*chain);
  if (lookup.version == nullptr) {
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
  } else {
    item.found = true;
    item.value = lookup.version->value;
    item.sr = lookup.version->sr;
    item.ut = lookup.version->ut;
    item.dv = lookup.version->dv;
  }
  item.fresher_versions = lookup.fresher;
  item.unmerged_versions = unmerged;
  staleness_.record_read(item.fresher_versions, item.unmerged_versions);
  return item;
}

void ReplicaBase::accumulate_slice(std::uint64_t tx_id,
                                   std::vector<proto::ReadItem> items,
                                   Duration blocked_us) {
  auto it = pending_tx_.find(tx_id);
  if (it == pending_tx_.end()) return;  // transaction aborted (HA timeout)
  PendingTx& tx = it->second;
  for (auto& item : items) tx.items.push_back(std::move(item));
  tx.max_blocked_us = std::max(tx.max_blocked_us, blocked_us);
  POCC_ASSERT(tx.awaiting > 0);
  --tx.awaiting;
  finish_tx_if_complete(tx_id);
}

Duration ReplicaBase::on_slice_reply(NodeId from,
                                     const proto::SliceReply& msg) {
  (void)from;
  charge(service_.tx_coord_us / 2);
  if (msg.aborted) {
    // A slice gave up waiting (HA-POCC partition suspicion): abort the whole
    // transaction and force the client to re-initialize its session.
    auto it = pending_tx_.find(msg.tx_id);
    if (it != pending_tx_.end()) {
      ctx_.reply(it->second.client,
                 proto::SessionClosed{it->second.client,
                                      "transaction slice timed out"});
      pending_tx_.erase(it);
    }
    return work_;
  }
  accumulate_slice(msg.tx_id, msg.items, msg.blocked_us);
  return work_;
}

void ReplicaBase::finish_tx_if_complete(std::uint64_t tx_id) {
  auto it = pending_tx_.find(tx_id);
  POCC_ASSERT(it != pending_tx_.end());
  PendingTx& tx = it->second;
  if (tx.awaiting > 0) return;
  proto::RoTxReply reply;
  reply.client = tx.client;
  reply.items = std::move(tx.items);
  reply.tv = tx.tv;
  reply.blocked_us = tx.max_blocked_us;
  reply.op_id = tx.op_id;
  ctx_.reply(tx.client, std::move(reply));
  pending_tx_.erase(it);
}

void ReplicaBase::on_slice_timeout(std::uint64_t tx_id, NodeId coordinator,
                                   Duration blocked_us) {
  (void)blocked_us;
  (void)coordinator;
  (void)tx_id;
  // Base protocol parks without deadlines; HA-POCC overrides park_deadline()
  // and handles aborts via on_park_timeout of the coordinator-side entry.
}

// ------------------------------------------------------------------ GC ----

VersionVector ReplicaBase::gc_watermark() const { return vv_; }

Duration ReplicaBase::on_gc_report(const proto::GcReport& msg) {
  charge(service_.gc_round_us);
  POCC_ASSERT(is_gc_aggregator());
  gc_reports_[msg.from.part] = msg.low_watermark;
  if (gc_reports_.size() == topology_.partitions_per_dc) {
    VersionVector gv = gc_reports_.begin()->second;
    for (const auto& [part, wm] : gc_reports_) gv.merge_min(wm);
    for (PartitionId p = 0; p < topology_.partitions_per_dc; ++p) {
      if (p == self_.part) continue;
      ctx_.send(NodeId{local_dc(), p}, proto::GcVector{gv});
    }
    on_gc_vector(proto::GcVector{gv});
  }
  return work_;
}

Duration ReplicaBase::on_gc_vector(const proto::GcVector& msg) {
  charge(service_.gc_round_us);
  const std::uint64_t removed = store_.gc([&](const store::Version& v) {
    return gc_version_at_floor(v, msg.gv);
  });
  charge(service_.version_hop_us * static_cast<Duration>(removed));
  gc_floor_us_ = static_cast<std::int64_t>(msg.gv.min_entry());
  return work_;
}

bool ReplicaBase::gc_version_at_floor(const store::Version& v,
                                      const VersionVector& gv) const {
  return v.dv.leq(gv);
}

// ----------------------------------------------------- stabilization ----

Duration ReplicaBase::on_stab_report(const proto::StabReport& msg) {
  (void)msg;  // POCC runs no stabilization protocol (§V).
  return work_;
}

Duration ReplicaBase::on_gss_broadcast(const proto::GssBroadcast& msg) {
  (void)msg;
  return work_;
}

// --------------------------------------------------------- utilities ----

bool ReplicaBase::slice_ready(const VersionVector& tv) const {
  return vv_.dominates(tv);
}

std::uint32_t ReplicaBase::count_unmerged(
    const store::VersionChain& chain) const {
  (void)chain;
  return 0;
}

void ReplicaBase::on_park_timeout(ClientId client, Duration blocked_us) {
  (void)client;
  (void)blocked_us;
  POCC_ASSERT_MSG(false, "parked request expired outside HA mode");
}

bool ReplicaBase::visible_to_pessimistic(const store::Version& v,
                                         const VersionVector& tv) const {
  (void)v;
  (void)tv;
  return true;
}

bool ReplicaBase::mark_opt_origin(const proto::PutReq& req) const {
  (void)req;
  return false;
}

void ReplicaBase::poke() { lot_.poke(ctx_.time()); }

void ReplicaBase::arm_clock_wakeup(Timestamp clock_target) {
  if (clock_wakeup_armed_ && clock_target >= armed_clock_target_) return;
  const Duration delay =
      std::max<Duration>(clock_target - ctx_.clock_peek() + 1, 1);
  ctx_.set_timer(delay, kTimerClockWait);
  clock_wakeup_armed_ = true;
  armed_clock_target_ = clock_target;
}

void ReplicaBase::arm_expiry() {
  if (park_deadline() <= 0) return;
  const Timestamp deadline = lot_.next_deadline();
  if (deadline == kTimestampMax) return;
  ctx_.set_timer(std::max<Duration>(deadline - ctx_.time(), 1), kTimerExpire);
}

}  // namespace pocc::server
