// Parked (stalled) requests — the heart of OCC's lazy dependency resolution.
//
// When a server cannot serve a request yet ("wait until VV >= RDV", Alg. 2
// lines 2/6/7/40) the request is parked with a readiness predicate and
// resumed, in FIFO order, once the predicate holds. poke() re-evaluates the
// lot and must be called whenever server state that predicates read (version
// vector, GSS, physical clock) advances.
//
// Parked requests may carry a deadline; expired requests are failed instead of
// resumed. HA-POCC uses this to detect network partitions (§III-B: "A network
// partition can be identified by p if it blocks for more than a configurable
// amount of time").
#pragma once

#include <cstdint>
#include <functional>
#include <list>

#include "common/types.hpp"

namespace pocc::server {

class ParkingLot {
 public:
  /// Returns true when the parked request can be served.
  using ReadyFn = std::function<bool()>;
  /// Resumes the request. `blocked_us` is how long it was parked.
  using ResumeFn = std::function<void(Duration blocked_us)>;
  /// Called instead of resume when the deadline expires.
  using TimeoutFn = std::function<void(Duration blocked_us)>;

  /// Park a request at reference time `now`. `deadline_us` <= 0 disables the
  /// timeout. Returns a ticket usable for targeted cancellation.
  std::uint64_t park(Timestamp now, ReadyFn ready, ResumeFn resume,
                     Duration deadline_us = 0, TimeoutFn on_timeout = nullptr);

  /// Resume every parked request whose predicate now holds (FIFO order).
  /// Returns the number of requests resumed.
  std::size_t poke(Timestamp now);

  /// Fail every parked request whose deadline passed. Returns count.
  std::size_t expire(Timestamp now);

  /// Earliest deadline among parked requests, or kTimestampMax.
  [[nodiscard]] Timestamp next_deadline() const;

  [[nodiscard]] std::size_t size() const { return parked_.size(); }
  [[nodiscard]] bool empty() const { return parked_.empty(); }

  /// Fail-and-drop all parked requests (e.g. session teardown). Each entry's
  /// timeout handler (when present) is invoked.
  void drain(Timestamp now);

  /// Silently discard all parked requests without invoking any handler —
  /// crash recovery: a dead process cannot answer what it was holding.
  void clear() { parked_.clear(); }

 private:
  struct Entry {
    std::uint64_t ticket;
    Timestamp parked_at;
    Timestamp deadline;  // kTimestampMax when no deadline
    ReadyFn ready;
    ResumeFn resume;
    TimeoutFn on_timeout;
  };

  std::list<Entry> parked_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace pocc::server
