// Durability seam between a protocol engine and its host.
//
// Engines stay pure state machines: they never touch a file descriptor. When
// the host provides a DurabilityLog via Context::durability(), the engine
// appends every state mutation that must survive a crash — version creation
// (local PUTs and remote Replicates) and heartbeat-driven VV raises — and the
// host decides when those appends become durable (group commit, src/wal/).
// Hosts without durability (the simulator's idealized mode, --no-durability)
// return nullptr and the engine skips the calls entirely.
#pragma once

#include "store/version.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::server {

/// Append-only sink for the engine mutations that must survive a crash.
/// Appends are buffered; the *host* syncs them (the engine never blocks on
/// I/O), and the runtime host withholds every reply/send produced while
/// unsynced bytes exist (output commit) so nothing externally visible ever
/// depends on a lost suffix.
class DurabilityLog {
 public:
  virtual ~DurabilityLog() = default;

  /// A version entered the store (serve_put or on_replicate). Replay must
  /// re-insert it and raise VV[v.sr] to v.ut.
  virtual void log_version(const store::Version& v) = 0;

  /// The VV advanced without a version (heartbeats). Replay must merge-max.
  /// Logged *after* the raise, so a synced VV record never claims versions
  /// that are not themselves synced (appends are ordered).
  virtual void log_vv(const VersionVector& vv) = 0;
};

}  // namespace pocc::server
