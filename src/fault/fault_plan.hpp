// Declarative, seed-deterministic fault schedules.
//
// A FaultPlan is a list of timed fault windows — network partitions
// (symmetric and one-directional), gray link slowdowns, fail-stop node
// crashes with restart, heartbeat suppression and bounded physical-clock
// skew/drift ramps — that the FaultInjector replays against a SimCluster.
// Plans are pure data: the same plan applied to the same seeded cluster
// reproduces the same run bit for bit, which is what makes the cluster-fuzz
// harness replayable from a one-line repro (`--engine X --seed N`).
//
// FaultPlan::random(seed, ...) generates a valid plan: every injected fault
// clears by `horizon_us` (partitions heal, crashed nodes restart, suppressed
// heartbeats resume, drift ramps unwind), crash windows on one node never
// overlap, and skew/drift magnitudes stay within the bounds of
// FaultPlanLimits — the invariants validate() enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace pocc::fault {

enum class FaultKind : std::uint8_t {
  kPartition,      // symmetric DC-pair partition (both directions blocked)
  kAsymPartition,  // one-directional partition: dc_a -> dc_b blocked only
  kLinkDegrade,    // gray slowdown on dc_a -> dc_b (extra delay + multiplier)
  kCrash,          // fail-stop crash of `node`; restart at window end
  kHeartbeatLoss,  // heartbeats sent by `node` are destroyed for the window
  kClockSkewRamp,  // slew `node`'s clock by skew_delta over the window; a
                   // drift_delta_ppm is applied at start and removed at end
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kPartition;
  Timestamp at = 0;       // injection time (virtual us from cluster start)
  Duration duration = 0;  // window length; the fault clears at `at + duration`
  DcId dc_a = 0;          // link faults: source DC
  DcId dc_b = 0;          // link faults: destination DC
  NodeId node{0, 0};      // node faults (crash / heartbeat / clock)
  Duration extra_delay_us = 0;    // kLinkDegrade
  double delay_multiplier = 1.0;  // kLinkDegrade
  Timestamp skew_delta_us = 0;    // kClockSkewRamp: total offset change
  double drift_delta_ppm = 0.0;   // kClockSkewRamp: drift during the window

  [[nodiscard]] Timestamp clears_at() const { return at + duration; }
  [[nodiscard]] std::string to_string() const;
};

/// Generation bounds for random plans. Defaults keep every fault window
/// injectable into a sub-second fuzz run while still exercising the
/// partition-suspicion timeout of HA-POCC (see FuzzCase).
struct FaultPlanLimits {
  std::uint32_t min_events = 3;
  std::uint32_t max_events = 8;
  Duration min_window_us = 10'000;
  Duration max_window_us = 120'000;
  Duration max_extra_delay_us = 40'000;
  double max_delay_multiplier = 4.0;
  Timestamp max_abs_skew_us = 20'000;
  double max_abs_drift_ppm = 100.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by injection time
  Duration horizon_us = 0;         // every fault has cleared by this time

  /// Seed-deterministic random plan. All windows fall inside
  /// [~5% , ~90%] * horizon so a run of `horizon_us` ends fault-free.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const TopologyConfig& topology,
                                        Duration horizon_us,
                                        const FaultPlanLimits& limits = {});

  /// Canonical content digest — printed in the fuzz repro line, so a replay
  /// can prove it regenerated the identical plan.
  [[nodiscard]] std::uint64_t hash() const;

  /// One event per line (failure artifacts / --list).
  [[nodiscard]] std::string to_string() const;

  /// Abort (POCC_ASSERT) unless the plan invariants hold: events sorted,
  /// windows clear within the horizon, link endpoints distinct and within
  /// the topology, crash windows per node non-overlapping.
  void validate(const TopologyConfig& topology) const;
};

}  // namespace pocc::fault
