#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace pocc::fault {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kAsymPartition:
      return "asym-partition";
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kHeartbeatLoss:
      return "heartbeat-loss";
    case FaultKind::kClockSkewRamp:
      return "clock-skew-ramp";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string s = std::string(fault_kind_name(kind)) + " at=" +
                  std::to_string(at) + "us dur=" + std::to_string(duration) +
                  "us";
  switch (kind) {
    case FaultKind::kPartition:
    case FaultKind::kAsymPartition:
      s += " dc" + std::to_string(dc_a) +
           (kind == FaultKind::kPartition ? "<->" : "->") + "dc" +
           std::to_string(dc_b);
      break;
    case FaultKind::kLinkDegrade:
      s += " dc" + std::to_string(dc_a) + "->dc" + std::to_string(dc_b) +
           " extra=" + std::to_string(extra_delay_us) +
           "us mult=" + std::to_string(delay_multiplier);
      break;
    case FaultKind::kCrash:
    case FaultKind::kHeartbeatLoss:
      s += " node=" + node.to_string();
      break;
    case FaultKind::kClockSkewRamp:
      s += " node=" + node.to_string() +
           " skew=" + std::to_string(skew_delta_us) +
           "us drift=" + std::to_string(drift_delta_ppm) + "ppm";
      break;
  }
  return s;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const TopologyConfig& topology,
                            Duration horizon_us,
                            const FaultPlanLimits& limits) {
  POCC_ASSERT(topology.num_dcs >= 2);
  POCC_ASSERT(horizon_us > 0);
  Rng rng(splitmix64(seed ^ 0xfa0171a9ULL));  // domain-separate from workload
  FaultPlan plan;
  plan.horizon_us = horizon_us;

  // Windows live inside [5%, 90%] of the horizon so the run's tail is
  // fault-free (the convergence phase the fuzz harness asserts on).
  const Timestamp earliest = horizon_us / 20;
  const Timestamp latest_clear = horizon_us - horizon_us / 10;
  POCC_ASSERT(earliest + limits.min_window_us < latest_clear);

  const std::uint32_t n_events =
      limits.min_events +
      static_cast<std::uint32_t>(
          rng.uniform(limits.max_events - limits.min_events + 1));

  // Per-node crash windows must not overlap (a node cannot die twice at
  // once); track claimed [at, clears) intervals per node. Degrade windows on
  // one directed link must not overlap either: the link holds a single
  // degrade state, so a stacked window's clear would silently cancel the
  // other — the injected schedule would no longer match the plan.
  std::map<std::pair<DcId, PartitionId>,
           std::vector<std::pair<Timestamp, Timestamp>>>
      crash_windows;
  std::map<std::pair<DcId, DcId>,
           std::vector<std::pair<Timestamp, Timestamp>>>
      degrade_windows;

  auto pick_window = [&](Duration min_w, Duration max_w) {
    const Duration w =
        min_w + static_cast<Duration>(rng.uniform(
                    static_cast<std::uint64_t>(max_w - min_w + 1)));
    const Timestamp span = latest_clear - earliest - w;
    const Timestamp at =
        earliest + (span > 0 ? static_cast<Timestamp>(rng.uniform(
                                   static_cast<std::uint64_t>(span) + 1))
                             : 0);
    return std::make_pair(at, w);
  };
  auto pick_dc_pair = [&] {
    const DcId a = static_cast<DcId>(rng.uniform(topology.num_dcs));
    DcId b = static_cast<DcId>(rng.uniform(topology.num_dcs - 1));
    if (b >= a) ++b;
    return std::make_pair(a, b);
  };
  auto pick_node = [&] {
    return NodeId{static_cast<DcId>(rng.uniform(topology.num_dcs)),
                  static_cast<PartitionId>(
                      rng.uniform(topology.partitions_per_dc))};
  };

  // Overlap rejections re-roll instead of shrinking the plan (a plan below
  // min_events would quietly weaken fault coverage); the attempt cap bounds
  // pathological topologies where every draw collides.
  std::uint32_t attempts = 0;
  while (plan.events.size() < n_events && attempts++ < n_events * 16) {
    FaultEvent e;
    // Kind weights: partitions and slowdowns dominate (they are the faults
    // POCC's optimism bets on); crashes, heartbeat loss and clock trouble
    // ride along.
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 25) {
      e.kind = FaultKind::kPartition;
    } else if (roll < 40) {
      e.kind = FaultKind::kAsymPartition;
    } else if (roll < 60) {
      e.kind = FaultKind::kLinkDegrade;
    } else if (roll < 75) {
      e.kind = FaultKind::kCrash;
    } else if (roll < 85) {
      e.kind = FaultKind::kHeartbeatLoss;
    } else {
      e.kind = FaultKind::kClockSkewRamp;
    }
    std::tie(e.at, e.duration) =
        pick_window(limits.min_window_us, limits.max_window_us);
    switch (e.kind) {
      case FaultKind::kPartition:
      case FaultKind::kAsymPartition:
        std::tie(e.dc_a, e.dc_b) = pick_dc_pair();
        break;
      case FaultKind::kLinkDegrade: {
        std::tie(e.dc_a, e.dc_b) = pick_dc_pair();
        auto& claimed = degrade_windows[{e.dc_a, e.dc_b}];
        const bool overlaps =
            std::any_of(claimed.begin(), claimed.end(), [&](const auto& w) {
              return e.at < w.second && w.first < e.clears_at();
            });
        if (overlaps) continue;  // one degrade state per directed link
        claimed.emplace_back(e.at, e.clears_at());
        e.extra_delay_us = 1'000 + static_cast<Duration>(rng.uniform(
                                       static_cast<std::uint64_t>(
                                           limits.max_extra_delay_us - 999)));
        // Quantized multiplier so the plan hash has no float noise.
        e.delay_multiplier =
            1.0 + 0.25 * static_cast<double>(rng.uniform(
                             static_cast<std::uint64_t>(std::llround(
                                 (limits.max_delay_multiplier - 1.0) / 0.25)) +
                             1));
        break;
      }
      case FaultKind::kCrash: {
        e.node = pick_node();
        auto& claimed = crash_windows[{e.node.dc, e.node.part}];
        const bool overlaps =
            std::any_of(claimed.begin(), claimed.end(), [&](const auto& w) {
              return e.at < w.second && w.first < e.clears_at();
            });
        if (overlaps) continue;  // skip instead of stacking crashes
        claimed.emplace_back(e.at, e.clears_at());
        break;
      }
      case FaultKind::kHeartbeatLoss:
        e.node = pick_node();
        break;
      case FaultKind::kClockSkewRamp: {
        e.node = pick_node();
        e.skew_delta_us =
            static_cast<Timestamp>(rng.uniform_range(-limits.max_abs_skew_us,
                                                     limits.max_abs_skew_us));
        // Quantized ppm, same reason as the multiplier.
        e.drift_delta_ppm = static_cast<double>(rng.uniform_range(
            -static_cast<std::int64_t>(limits.max_abs_drift_ppm),
            static_cast<std::int64_t>(limits.max_abs_drift_ppm)));
        break;
      }
    }
    plan.events.push_back(e);
  }

  POCC_ASSERT_MSG(plan.events.size() >= limits.min_events,
                  "random plan fell below min_events despite re-rolls");
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  plan.validate(topology);
  return plan;
}

std::uint64_t FaultPlan::hash() const {
  std::uint64_t h = 0x6b756c747a616861ULL;
  auto mix = [&h](std::uint64_t x) { h = splitmix64(h ^ x); };
  mix(static_cast<std::uint64_t>(horizon_us));
  mix(events.size());
  for (const FaultEvent& e : events) {
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.at));
    mix(static_cast<std::uint64_t>(e.duration));
    mix(e.dc_a);
    mix(e.dc_b);
    mix(e.node.dc);
    mix(e.node.part);
    mix(static_cast<std::uint64_t>(e.extra_delay_us));
    // Generated values are quantized (0.25x / 1 ppm steps), so scaling gives
    // an exact integer — the hash is float-representation independent.
    mix(static_cast<std::uint64_t>(std::llround(e.delay_multiplier * 4.0)));
    mix(static_cast<std::uint64_t>(e.skew_delta_us));
    mix(static_cast<std::uint64_t>(std::llround(e.drift_delta_ppm)));
  }
  return h;
}

std::string FaultPlan::to_string() const {
  std::string s = "FaultPlan horizon=" + std::to_string(horizon_us) +
                  "us events=" + std::to_string(events.size()) + "\n";
  for (const FaultEvent& e : events) {
    s += "  " + e.to_string() + "\n";
  }
  return s;
}

void FaultPlan::validate(const TopologyConfig& topology) const {
  std::map<std::pair<DcId, PartitionId>,
           std::vector<std::pair<Timestamp, Timestamp>>>
      crash_windows;
  std::map<std::pair<DcId, DcId>,
           std::vector<std::pair<Timestamp, Timestamp>>>
      degrade_windows;
  Timestamp prev_at = 0;
  for (const FaultEvent& e : events) {
    POCC_ASSERT_MSG(e.at >= prev_at, "fault events must be time-sorted");
    prev_at = e.at;
    POCC_ASSERT_MSG(e.duration > 0, "fault window must have positive length");
    POCC_ASSERT_MSG(e.clears_at() <= horizon_us,
                    "fault must clear within the plan horizon");
    switch (e.kind) {
      case FaultKind::kPartition:
      case FaultKind::kAsymPartition:
      case FaultKind::kLinkDegrade:
        POCC_ASSERT(e.dc_a != e.dc_b);
        POCC_ASSERT(e.dc_a < topology.num_dcs && e.dc_b < topology.num_dcs);
        if (e.kind == FaultKind::kLinkDegrade) {
          auto& claimed = degrade_windows[{e.dc_a, e.dc_b}];
          for (const auto& w : claimed) {
            POCC_ASSERT_MSG(!(e.at < w.second && w.first < e.clears_at()),
                            "overlapping degrade windows on one link");
          }
          claimed.emplace_back(e.at, e.clears_at());
        }
        break;
      case FaultKind::kCrash: {
        POCC_ASSERT(e.node.dc < topology.num_dcs &&
                    e.node.part < topology.partitions_per_dc);
        auto& claimed = crash_windows[{e.node.dc, e.node.part}];
        for (const auto& w : claimed) {
          POCC_ASSERT_MSG(!(e.at < w.second && w.first < e.clears_at()),
                          "overlapping crash windows on one node");
        }
        claimed.emplace_back(e.at, e.clears_at());
        break;
      }
      case FaultKind::kHeartbeatLoss:
      case FaultKind::kClockSkewRamp:
        POCC_ASSERT(e.node.dc < topology.num_dcs &&
                    e.node.part < topology.partitions_per_dc);
        break;
    }
  }
}

}  // namespace pocc::fault
