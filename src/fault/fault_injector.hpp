// Drives a FaultPlan through a SimCluster.
//
// arm() schedules two simulator events per fault window (inject at `at`,
// clear at `at + duration`) plus the sub-steps of clock-skew ramps. All
// mutations go through the extended fault hooks: SimNetwork's directed link
// table (partitions, gray degradations, heartbeat suppression, endpoint
// epochs), SimCluster::crash_node/restart_node (fail-stop + anti-entropy
// rebuild) and PhysicalClock::slew/adjust_drift. Because the injector runs
// inside the discrete-event loop, a plan composes deterministically with the
// workload: one seed reproduces the whole faulted run bit for bit.
#pragma once

#include <cstdint>

#include "cluster/sim_cluster.hpp"
#include "fault/fault_plan.hpp"

namespace pocc::fault {

class FaultInjector {
 public:
  /// The cluster must outlive the injector; the plan is validated against the
  /// cluster topology.
  FaultInjector(cluster::SimCluster& cluster, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan event on the cluster's simulator. Call once, before
  /// running past the first event time.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Fault windows opened / closed so far (clock ramps count once each).
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t cleared() const { return cleared_; }
  [[nodiscard]] bool all_cleared() const {
    return armed_ && injected_ == plan_.events.size() &&
           cleared_ == plan_.events.size();
  }
  /// Versions pulled from peers by crash-restart rebuilds.
  [[nodiscard]] std::uint64_t versions_recovered() const {
    return versions_recovered_;
  }

 private:
  /// Number of discrete slew steps a clock ramp is divided into.
  static constexpr int kRampSteps = 8;

  void inject(const FaultEvent& e);
  void clear(const FaultEvent& e);

  cluster::SimCluster& cluster_;
  FaultPlan plan_;
  bool armed_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t cleared_ = 0;
  std::uint64_t versions_recovered_ = 0;
};

}  // namespace pocc::fault
