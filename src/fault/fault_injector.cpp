#include "fault/fault_injector.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pocc::fault {

FaultInjector::FaultInjector(cluster::SimCluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)) {
  plan_.validate(cluster_.config().topology);
}

void FaultInjector::arm() {
  POCC_ASSERT_MSG(!armed_, "injector armed twice");
  armed_ = true;
  sim::Simulator& sim = cluster_.simulator();
  const Timestamp base = sim.now();
  for (const FaultEvent& e : plan_.events) {
    sim.schedule_at(base + e.at, [this, &e] { inject(e); });
    if (e.kind == FaultKind::kClockSkewRamp) {
      // Spread the slew across the window in discrete steps (NTP-daemon
      // style); the start event applies the drift delta, the clear event
      // removes it so drift stays bounded across a campaign.
      const Timestamp step_delta = e.skew_delta_us / kRampSteps;
      for (int s = 1; s < kRampSteps; ++s) {
        sim.schedule_at(
            base + e.at + (e.duration * s) / kRampSteps, [this, &e,
                                                          step_delta] {
              cluster_.clock_at(e.node).slew(step_delta);
            });
      }
    }
    sim.schedule_at(base + e.clears_at(), [this, &e] { clear(e); });
  }
}

void FaultInjector::inject(const FaultEvent& e) {
  ++injected_;
  net::SimNetwork& net = cluster_.network();
  switch (e.kind) {
    case FaultKind::kPartition:
      net.partition_dcs(e.dc_a, e.dc_b);
      break;
    case FaultKind::kAsymPartition:
      net.block_link(e.dc_a, e.dc_b);
      break;
    case FaultKind::kLinkDegrade:
      net.degrade_link(e.dc_a, e.dc_b, e.extra_delay_us, e.delay_multiplier);
      break;
    case FaultKind::kCrash:
      cluster_.crash_node(e.node);
      break;
    case FaultKind::kHeartbeatLoss:
      net.suppress_heartbeats(e.node);
      break;
    case FaultKind::kClockSkewRamp:
      // First slew step; the remaining steps are scheduled by arm().
      cluster_.clock_at(e.node).slew(e.skew_delta_us -
                                     (e.skew_delta_us / kRampSteps) *
                                         (kRampSteps - 1));
      cluster_.clock_at(e.node).adjust_drift(e.drift_delta_ppm);
      break;
  }
}

void FaultInjector::clear(const FaultEvent& e) {
  ++cleared_;
  net::SimNetwork& net = cluster_.network();
  switch (e.kind) {
    case FaultKind::kPartition:
      net.heal_dcs(e.dc_a, e.dc_b);
      break;
    case FaultKind::kAsymPartition:
      net.unblock_link(e.dc_a, e.dc_b);
      break;
    case FaultKind::kLinkDegrade:
      net.clear_link_degrade(e.dc_a, e.dc_b);
      break;
    case FaultKind::kCrash:
      versions_recovered_ += cluster_.restart_node(e.node);
      break;
    case FaultKind::kHeartbeatLoss:
      net.resume_heartbeats(e.node);
      break;
    case FaultKind::kClockSkewRamp:
      // The accumulated skew stays (clocks do not rewind); only the extra
      // drift is removed so it cannot compound across windows.
      cluster_.clock_at(e.node).adjust_drift(-e.drift_delta_ppm);
      break;
  }
}

}  // namespace pocc::fault
