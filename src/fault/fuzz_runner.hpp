// Seed-reproducible cluster-fuzz harness.
//
// One fuzz case = (engine, seed). The seed deterministically derives the
// fault plan, the workload streams, the clock skews and the network jitter,
// so `run_fuzz_case` is a pure function: re-running the same case replays the
// run bit for bit (verified by comparing SimCluster::state_digest across
// runs). A case passes when, after every injected fault has cleared and the
// workload drained:
//   * the online HistoryChecker observed zero causal-consistency violations,
//   * all replicas converged (no divergent keys),
//   * no request is left parked on any server,
//   * the run was not vacuous (operations completed, checks performed).
//
// Shared by tests/cluster_fuzz_test.cpp (small ctest-labeled campaign) and
// bench/fuzz_campaign (the CLI driver CI runs nightly with rotating seeds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/sim_cluster.hpp"
#include "fault/fault_plan.hpp"

namespace pocc::fault {

struct FuzzCase {
  cluster::SystemKind system = cluster::SystemKind::kPocc;
  /// kWal runs fail-stop crashes through the real WAL recovery path
  /// (engine rebuild + log replay) instead of the idealized durable-store
  /// model. Digests are comparable within a mode, not across modes (a
  /// rebuilt engine's stat counters restart from zero).
  cluster::DurabilityMode durability = cluster::DurabilityMode::kIdealized;
  std::uint64_t seed = 1;
  std::uint32_t num_dcs = 3;
  std::uint32_t partitions = 2;
  std::uint32_t clients_per_partition = 2;
  /// Faulted phase length; the fault plan's horizon. All faults clear by
  /// ~90% of this, leaving a fault-free tail before the drain.
  Duration run_us = 600'000;
  /// Fault-free convergence phase after stop_clients().
  Duration drain_us = 5'000'000;
  FaultPlanLimits limits;
};

struct FuzzOutcome {
  bool ok = false;
  std::vector<std::string> failures;  // violations / divergence / vacuity
  std::uint64_t plan_hash = 0;
  std::string plan_text;
  std::uint64_t digest = 0;  // end-state digest (replay verification)
  std::uint64_t completed_ops = 0;
  std::uint64_t checks_performed = 0;
  std::uint64_t versions_registered = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t versions_recovered = 0;  // crash-restart anti-entropy
  std::uint64_t messages_dropped = 0;    // destroyed by faults
  std::uint64_t session_fallbacks = 0;   // closed/timed-out sessions
};

/// The fault plan a case runs (exposed for artifact dumps / tests).
[[nodiscard]] FaultPlan plan_for_case(const FuzzCase& c);

[[nodiscard]] FuzzOutcome run_fuzz_case(const FuzzCase& c);

/// `--engine` spelling of a system (pocc / scalar_pocc / ha_pocc / cure).
[[nodiscard]] const char* engine_flag(cluster::SystemKind k);
/// Parse an `--engine` spelling; returns false on unknown names.
[[nodiscard]] bool parse_engine(const std::string& name,
                                cluster::SystemKind& out);
/// `--durability` spelling of a mode (idealized / wal).
[[nodiscard]] const char* durability_flag(cluster::DurabilityMode m);
/// Parse a `--durability` spelling; returns false on unknown names.
[[nodiscard]] bool parse_durability(const std::string& name,
                                    cluster::DurabilityMode& out);

/// The one-line repro printed on failure: replaying it reruns the identical
/// case (the plan hash lets the replayer prove it rebuilt the same plan).
[[nodiscard]] std::string repro_line(const FuzzCase& c,
                                     const FuzzOutcome& o);

/// 0x-prefixed fixed-width hex (plan hashes, digests).
[[nodiscard]] std::string hex64(std::uint64_t v);

}  // namespace pocc::fault
