#include "fault/fuzz_runner.hpp"

#include <algorithm>
#include <utility>

#include "fault/fault_injector.hpp"

namespace pocc::fault {

namespace {

cluster::SimClusterConfig case_cluster_config(const FuzzCase& c) {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = c.num_dcs;
  cfg.topology.partitions_per_dc = c.partitions;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  // LAN-ish intra-DC, multi-millisecond WAN with per-pair asymmetry so
  // replication streams interleave differently per link.
  cfg.latency = LatencyConfig::uniform(250, 100);
  cfg.latency.inter_dc_base_us.assign(
      c.num_dcs, std::vector<Duration>(c.num_dcs, 0));
  for (DcId i = 0; i < c.num_dcs; ++i) {
    for (DcId j = 0; j < c.num_dcs; ++j) {
      if (i != j) {
        cfg.latency.inter_dc_base_us[i][j] =
            4'000 + 1'500 * static_cast<Duration>(i + j);
      }
    }
  }
  cfg.clock.offset_sigma_us = 1'000.0;
  cfg.clock.dc_offset_sigma_us = 1'500.0;
  cfg.clock.drift_ppm_sigma = 20.0;
  // Short enough that fuzz fault windows (up to limits.max_window_us) push
  // HA-POCC across its partition-suspicion timeout, exercising session
  // closure + pessimistic fallback + promotion.
  cfg.protocol.block_timeout_us = 60'000;
  cfg.protocol.ha_stabilization_interval_us = 30'000;
  cfg.system = c.system;
  cfg.durability = c.durability;
  cfg.seed = c.seed;
  cfg.enable_checker = true;
  return cfg;
}

workload::WorkloadConfig case_workload(const FuzzCase& c) {
  workload::WorkloadConfig wl;
  // Mixed campaign: even seeds run the Get-Put pattern, odd seeds the
  // transactional pattern, both over a small hot Zipf key set so write-write
  // and read-write races are dense.
  wl.pattern = (c.seed % 2 == 0) ? workload::Pattern::kGetPut
                                 : workload::Pattern::kTxPut;
  wl.gets_per_put = 2;
  wl.tx_partitions = std::min<std::uint32_t>(c.partitions, 3);
  wl.think_time_us = 2'000;
  wl.keys_per_partition = 20;
  wl.zipf_theta = 0.99;
  // Longer than the longest fault window: a retry means the request really
  // died (crashed server), not that it is merely parked behind a partition.
  wl.op_timeout_us = 180'000;
  return wl;
}

}  // namespace

FaultPlan plan_for_case(const FuzzCase& c) {
  TopologyConfig topo;
  topo.num_dcs = c.num_dcs;
  topo.partitions_per_dc = c.partitions;
  return FaultPlan::random(c.seed, topo, c.run_us, c.limits);
}

FuzzOutcome run_fuzz_case(const FuzzCase& c) {
  FuzzOutcome out;

  cluster::SimCluster cluster(case_cluster_config(c));
  cluster.add_workload_clients(c.clients_per_partition, case_workload(c));

  FaultInjector injector(cluster, plan_for_case(c));
  out.plan_hash = injector.plan().hash();
  out.plan_text = injector.plan().to_string();
  out.faults_injected = injector.plan().events.size();
  injector.arm();

  cluster.begin_measurement();
  cluster.run_for(c.run_us);
  const cluster::ClusterMetrics m = cluster.end_measurement();
  cluster.stop_clients();
  cluster.run_for(c.drain_us);

  if (!injector.all_cleared()) {
    out.failures.push_back("injector: not every fault window was cleared");
  }
  const checker::HistoryChecker* chk = cluster.checker();
  for (const std::string& v : chk->violations()) {
    out.failures.push_back("checker: " + v);
  }
  for (const std::string& key : cluster.divergent_keys()) {
    out.failures.push_back("convergence: key '" + key +
                           "' diverges across DCs after all faults healed");
  }
  if (const std::size_t parked = cluster.total_parked_requests();
      parked != 0) {
    out.failures.push_back("liveness: " + std::to_string(parked) +
                           " request(s) still parked after drain");
  }
  if (m.completed_ops == 0) {
    out.failures.push_back("vacuous: no operation completed under faults");
  }
  if (chk->checks_performed() == 0) {
    out.failures.push_back("vacuous: checker performed zero checks");
  }

  out.completed_ops = m.completed_ops;
  out.session_fallbacks = m.session_fallbacks;
  out.checks_performed = chk->checks_performed();
  out.versions_registered = chk->versions_registered();
  out.versions_recovered = injector.versions_recovered();
  out.messages_dropped = cluster.network().stats().dropped_messages;
  out.digest = cluster.state_digest();
  out.ok = out.failures.empty();
  return out;
}

const char* engine_flag(cluster::SystemKind k) {
  switch (k) {
    case cluster::SystemKind::kPocc:
      return "pocc";
    case cluster::SystemKind::kCure:
      return "cure";
    case cluster::SystemKind::kHaPocc:
      return "ha_pocc";
    case cluster::SystemKind::kScalarPocc:
      return "scalar_pocc";
  }
  return "?";
}

bool parse_engine(const std::string& name, cluster::SystemKind& out) {
  if (name == "pocc") {
    out = cluster::SystemKind::kPocc;
  } else if (name == "cure") {
    out = cluster::SystemKind::kCure;
  } else if (name == "ha_pocc") {
    out = cluster::SystemKind::kHaPocc;
  } else if (name == "scalar_pocc") {
    out = cluster::SystemKind::kScalarPocc;
  } else {
    return false;
  }
  return true;
}

const char* durability_flag(cluster::DurabilityMode m) {
  switch (m) {
    case cluster::DurabilityMode::kIdealized:
      return "idealized";
    case cluster::DurabilityMode::kWal:
      return "wal";
  }
  return "?";
}

bool parse_durability(const std::string& name, cluster::DurabilityMode& out) {
  if (name == "idealized") {
    out = cluster::DurabilityMode::kIdealized;
  } else if (name == "wal") {
    out = cluster::DurabilityMode::kWal;
  } else {
    return false;
  }
  return true;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s += digits[(v >> shift) & 0xf];
  }
  return s;
}

std::string repro_line(const FuzzCase& c, const FuzzOutcome& o) {
  // Durations are part of the case (the plan horizon derives from run_us),
  // so the repro carries them explicitly — a campaign run with non-default
  // lengths must replay with the same ones.
  return std::string("fuzz_campaign --engine ") + engine_flag(c.system) +
         " --durability " + durability_flag(c.durability) + " --seed " +
         std::to_string(c.seed) + " --duration-us " +
         std::to_string(c.run_us) + " --drain-us " +
         std::to_string(c.drain_us) + " --plan-hash " + hex64(o.plan_hash);
}

}  // namespace pocc::fault
