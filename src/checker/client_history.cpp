#include "checker/client_history.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace pocc::checker {

namespace {

/// Identity of a concrete version: key + LWW coordinates.
struct VersionKey {
  KeyId key = 0;
  Timestamp ut = 0;
  DcId sr = 0;

  friend bool operator==(const VersionKey&, const VersionKey&) = default;
};

struct VersionKeyHash {
  std::size_t operator()(const VersionKey& v) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(v.ut);
    h ^= (static_cast<std::uint64_t>(v.key) << 32) | v.sr;
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

using RegisteredSet = std::unordered_set<VersionKey, VersionKeyHash>;

bool item_registered(const proto::ReadItem& item, const RegisteredSet& reg) {
  if (!item.found) return true;  // implicit initial version
  return reg.contains(VersionKey{item.key, item.ut, item.sr});
}

/// Per-session replay cursor.
struct Cursor {
  const SessionHistory* history = nullptr;
  std::size_t pos = 0;
  /// DV and key of in-flight PUTs by op_id — the version record a later
  /// PutReply registers (dv crosses the wire in the request, not the reply).
  std::unordered_map<std::uint64_t, proto::PutReq> pending_puts;
};

/// True when the cursor's next event may be processed now.
struct ReadyVisitor {
  const RegisteredSet& reg;

  bool operator()(const proto::GetReq&) const { return true; }
  bool operator()(const proto::PutReq&) const { return true; }
  bool operator()(const proto::RoTxReq&) const { return true; }
  bool operator()(const proto::PutReply&) const { return true; }
  bool operator()(const SessionReset&) const { return true; }
  bool operator()(const SessionPromoted&) const { return true; }
  bool operator()(const proto::GetReply& r) const {
    return item_registered(r.item, reg);
  }
  bool operator()(const proto::RoTxReply& r) const {
    for (const proto::ReadItem& item : r.items) {
      if (!item_registered(item, reg)) return false;
    }
    return true;
  }
};

}  // namespace

ReplayResult replay_history(const std::vector<SessionHistory>& sessions,
                            HistoryChecker& checker) {
  ReplayResult result;
  std::vector<Cursor> cursors;
  cursors.reserve(sessions.size());
  std::size_t total_events = 0;
  for (const SessionHistory& s : sessions) {
    checker.register_client(s.client, s.dc, s.snapshot_rdv);
    cursors.push_back(Cursor{&s, 0, {}});
    total_events += s.events.size();
  }

  RegisteredSet registered;
  const ReadyVisitor ready{registered};

  auto process = [&](Cursor& cur, const HistoryEvent& ev) {
    const ClientId c = cur.history->client;
    if (const auto* get_req = std::get_if<proto::GetReq>(&ev)) {
      checker.on_get_issued(c, *get_req);
    } else if (const auto* put_req = std::get_if<proto::PutReq>(&ev)) {
      checker.on_put_issued(c, *put_req);
      cur.pending_puts[put_req->op_id] = *put_req;
    } else if (const auto* tx_req = std::get_if<proto::RoTxReq>(&ev)) {
      checker.on_tx_issued(c, *tx_req);
    } else if (const auto* get_rep = std::get_if<proto::GetReply>(&ev)) {
      checker.on_get_reply(c, *get_rep);
    } else if (const auto* rep = std::get_if<proto::PutReply>(&ev)) {
      // The reply proves the server created <key, ut, sr> with the DV the
      // request carried: register it before the reply is absorbed, exactly
      // like the simulator's server-side version observer.
      auto pending = cur.pending_puts.find(rep->op_id);
      if (pending != cur.pending_puts.end()) {
        checker.on_version_created(c, rep->op_id, rep->key, rep->ut, rep->sr,
                                   pending->second.dv);
        cur.pending_puts.erase(pending);
      } else {
        checker.on_version_created(c, rep->op_id, rep->key, rep->ut, rep->sr,
                                   VersionVector(checker.num_dcs()));
      }
      registered.insert(VersionKey{rep->key, rep->ut, rep->sr});
      checker.on_put_reply(c, *rep);
    } else if (const auto* tx_rep = std::get_if<proto::RoTxReply>(&ev)) {
      checker.on_tx_reply(c, *tx_rep);
    } else if (std::holds_alternative<SessionReset>(ev)) {
      checker.on_session_reset(c);
      cur.pending_puts.clear();
    } else {
      checker.on_session_promoted(c);
    }
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (Cursor& cur : cursors) {
      while (cur.pos < cur.history->events.size()) {
        const HistoryEvent& ev = cur.history->events[cur.pos];
        if (!std::visit(ready, ev)) break;
        process(cur, ev);
        ++cur.pos;
        ++result.events_replayed;
        progress = true;
      }
    }
  }

  result.complete = result.events_replayed == total_events;
  if (!result.complete) {
    for (const Cursor& cur : cursors) {
      if (cur.pos < cur.history->events.size()) {
        result.error +=
            (result.error.empty() ? "" : "; ") + std::string("client ") +
            std::to_string(cur.history->client) + " stuck at event " +
            std::to_string(cur.pos) +
            " (a read returned a version no replayed session wrote)";
      }
    }
  }
  return result;
}

}  // namespace pocc::checker
