#include "checker/history_checker.hpp"

#include <utility>

#include "common/assert.hpp"
#include "store/key_space.hpp"

namespace pocc::checker {

void HistoryChecker::register_client(ClientId c, DcId dc, bool snapshot_rdv) {
  Session s;
  s.dc = dc;
  s.snapshot_rdv = snapshot_rdv;
  s.dv = VersionVector(num_dcs_);
  s.rdv = VersionVector(num_dcs_);
  s.rdv_at_issue = VersionVector(num_dcs_);
  sessions_.emplace(c, std::move(s));
}

void HistoryChecker::on_version_created(ClientId c, std::uint64_t op_id,
                                        KeyId key, Timestamp ut, DcId sr,
                                        const VersionVector& dv) {
  ++versions_registered_;
  // Proposition 2: the update timestamp strictly dominates every dependency.
  ++checks_;
  if (ut <= dv.max_entry()) {
    fail("Prop2 violated: version of '" + store::key_name(key) +
         "' ut=" + std::to_string(ut) +
         " <= max(dv)=" + std::to_string(dv.max_entry()));
  }
  auto s = sessions_.find(c);
  PastMapPtr past;
  if (s != sessions_.end()) {
    auto pending = s->second.pending_put_pasts.find(op_id);
    if (pending != s->second.pending_put_pasts.end()) {
      past = pending->second;
      s->second.pending_put_pasts.erase(pending);
    }
    // No snapshot (request issued before a session reset, or a test driving
    // the registry directly): register with an empty past — sound, merely
    // weaker (fewer causal edges to enforce on readers).
  }
  registry_[key].push_back(VersionRecord{VersionId{ut, sr}, dv, past});
}

void HistoryChecker::on_get_issued(ClientId c, const proto::GetReq& req) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  // Algorithm 1 conformance: the RDV on the wire must equal the mirror.
  ++checks_;
  if (!(req.rdv == s.rdv)) {
    fail("Alg1 violated: GET carries RDV " + req.rdv.to_string() +
         ", expected " + s.rdv.to_string());
  }
  s.rdv_at_issue = s.rdv;
}

void HistoryChecker::on_tx_issued(ClientId c, const proto::RoTxReq& req) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  ++checks_;
  // RO-TX carries the client's DV (see ClientEngine::make_ro_tx).
  if (!(req.rdv == s.dv)) {
    fail("Alg1 violated: RO-TX carries vector " + req.rdv.to_string() +
         ", expected DV " + s.dv.to_string());
  }
  s.rdv_at_issue = s.rdv;
}

void HistoryChecker::on_put_issued(ClientId c, const proto::PutReq& req) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  ++checks_;
  if (!(req.dv == s.dv)) {
    fail("Alg1 violated: PUT carries DV " + req.dv.to_string() +
         ", expected " + s.dv.to_string());
  }
  // Snapshot the writer's causal past: it becomes the new version's past.
  s.pending_put_pasts[req.op_id] = std::make_shared<PastMap>(s.past);
}

void HistoryChecker::on_put_reply(ClientId c, const proto::PutReply& reply) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  // Alg. 1 line 12.
  s.dv.raise(s.dc, reply.ut);
  // The client's own write joins its causal past (thread-of-execution edge).
  const VersionId id{reply.ut, reply.sr};
  auto& slot = s.past[reply.key];
  if (id.fresher_than(slot)) slot = id;
  s.pending_put_pasts.erase(reply.op_id);
}

const HistoryChecker::VersionRecord* HistoryChecker::find_version(
    KeyId key, VersionId id) const {
  auto it = registry_.find(key);
  if (it == registry_.end()) return nullptr;
  for (const VersionRecord& r : it->second) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

void HistoryChecker::check_read_item(ClientId c, Session& s,
                                     const proto::ReadItem& item,
                                     const char* op) {
  const VersionId returned =
      item.found ? VersionId{item.ut, item.sr} : VersionId{0, 0};
  // Exact causal-past rule: the freshest version of this key in the client's
  // causal past must not be fresher than the returned version. This subsumes
  // read-your-writes and monotonic reads for sticky sessions.
  ++checks_;
  auto past_it = s.past.find(item.key);
  if (past_it != s.past.end() && past_it->second.fresher_than(returned)) {
    fail(std::string("causal GET rule violated for client ") +
         std::to_string(c) + " (" + op +
         (s.pessimistic ? ", pessimistic" : ", optimistic") + " session, dc " +
         std::to_string(s.dc) + "): read of '" + store::key_name(item.key) +
         "' returned (ut=" + std::to_string(returned.ut) +
         ",sr=" + std::to_string(returned.sr) +
         ") dv=" + item.dv.to_string() + " but causal past holds (ut=" +
         std::to_string(past_it->second.ut) +
         ",sr=" + std::to_string(past_it->second.sr) +
         "); session rdv=" + s.rdv.to_string());
  }
}

void HistoryChecker::absorb_read(Session& s, const proto::ReadItem& item) {
  if (!item.found) return;
  // Mirror Algorithm 1 lines 4-6 (plus the snapshot-inclusive RDV used by
  // commit-vector-gated sessions; see ClientEngine).
  s.rdv.merge_max(item.dv);
  if (s.snapshot_rdv || s.pessimistic) {
    s.rdv.raise(item.sr, item.ut);
  }
  s.dv.merge_max(s.rdv);
  s.dv.raise(item.sr, item.ut);
  // Extend the causal past with the read version and its past.
  const VersionId id{item.ut, item.sr};
  const VersionRecord* rec = find_version(item.key, id);
  if (rec == nullptr) {
    fail("internal: read returned unregistered version of '" +
         store::key_name(item.key) + "'");
  } else if (rec->past != nullptr) {
    for (const auto& [key, vid] : *rec->past) {
      auto& slot = s.past[key];
      if (vid.fresher_than(slot)) slot = vid;
    }
  }
  auto& slot = s.past[item.key];
  if (id.fresher_than(slot)) slot = id;
}

void HistoryChecker::on_get_reply(ClientId c, const proto::GetReply& reply) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  check_read_item(c, s, reply.item, "GET");
  absorb_read(s, reply.item);
}

void HistoryChecker::on_tx_reply(ClientId c, const proto::RoTxReply& reply) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  // Per-item session rule, against the past as of transaction issue.
  for (const proto::ReadItem& item : reply.items) {
    check_read_item(c, s, item, "RO-TX");
  }
  // Causal-snapshot rule (§II-A RO-TX semantics): for returned items X of x
  // and Y of y, Y's causal past must not contain a version of x fresher than
  // the returned X (the paper's Prop. 4 establishes exactly this from the
  // visibility rule d.DV <= TV).
  for (const proto::ReadItem& y : reply.items) {
    if (!y.found) continue;
    const VersionRecord* yrec = find_version(y.key, VersionId{y.ut, y.sr});
    if (yrec == nullptr || yrec->past == nullptr) continue;
    for (const proto::ReadItem& x : reply.items) {
      if (&x == &y) continue;
      ++checks_;
      const VersionId returned_x =
          x.found ? VersionId{x.ut, x.sr} : VersionId{0, 0};
      auto in_past = yrec->past->find(x.key);
      if (in_past != yrec->past->end() &&
          in_past->second.fresher_than(returned_x)) {
        fail("RO-TX snapshot violated for client " + std::to_string(c) +
             ": returned '" + store::key_name(x.key) +
             "'@(ut=" + std::to_string(returned_x.ut) + ") together with '" +
             store::key_name(y.key) + "'@(ut=" + std::to_string(y.ut) +
             ") whose past holds '" + store::key_name(x.key) + "'@(ut=" +
             std::to_string(in_past->second.ut) + ")");
      }
    }
  }
  for (const proto::ReadItem& item : reply.items) {
    absorb_read(s, item);
  }
}

void HistoryChecker::on_session_reset(ClientId c) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  Session& s = it->second;
  // §III-B: the re-initialized session may not see items read or written in
  // the optimistic session; all session state restarts from scratch.
  s.dv = VersionVector(num_dcs_);
  s.rdv = VersionVector(num_dcs_);
  s.rdv_at_issue = VersionVector(num_dcs_);
  s.past.clear();
  s.pending_put_pasts.clear();
  s.pessimistic = true;
}

void HistoryChecker::on_session_promoted(ClientId c) {
  auto it = sessions_.find(c);
  POCC_ASSERT(it != sessions_.end());
  it->second.pessimistic = false;
}

}  // namespace pocc::checker
