// Online causal-consistency checker.
//
// Observes every version created in the cluster and every client-visible
// operation, and verifies the guarantees of §II-A plus the invariants proved
// in the paper's appendix:
//
//   * Causal GET rule: a read must return a version at least as fresh (in the
//     LWW order) as the freshest version of that key in the client's *actual*
//     causal past. This subsumes read-your-writes and monotonic reads for
//     sticky sessions.
//   * RO-TX snapshot rule: for returned items X (of key x) and Y, Y's causal
//     past must not contain a version of x fresher than X (the property the
//     paper's Proposition 4 derives from the d.DV <= TV visibility rule).
//   * Proposition 2: a version's update timestamp strictly exceeds every
//     entry of its dependency vector.
//   * Algorithm 1 conformance: the DV/RDV a client puts on the wire must
//     match an independent mirror of the client protocol.
//
// The causal past is tracked *exactly* (item granularity): every version
// records a snapshot of its writer's per-key causal-past map, and sessions
// merge the past of each version they read. This avoids the
// false positives a vector-granularity check would produce (dependency
// vectors deliberately over-approximate, §IV) while remaining sound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::checker {

/// Identity of a version in the LWW total order (§IV-B: higher ut wins, ties
/// to the lower source replica).
struct VersionId {
  Timestamp ut = 0;
  DcId sr = 0;

  [[nodiscard]] bool fresher_than(const VersionId& o) const {
    if (ut != o.ut) return ut > o.ut;
    return sr < o.sr;
  }
  friend bool operator==(const VersionId&, const VersionId&) = default;
};

class HistoryChecker {
 public:
  explicit HistoryChecker(std::uint32_t num_dcs) : num_dcs_(num_dcs) {}

  /// Register a client session (before its first operation). `snapshot_rdv`
  /// must match the client engine's mode (Cure* sessions absorb read commit
  /// times into the RDV; POCC sessions do not).
  void register_client(ClientId c, DcId dc, bool snapshot_rdv = false);

  /// Observe a version at creation time (wired to the server PUT path, so the
  /// registry is complete the moment a version becomes readable anywhere).
  /// `op_id` is the creating PutReq's RPC sequence number; it selects the
  /// writer's causal-past snapshot taken when that exact request was issued
  /// (under fault injection a PUT can execute long after its client timed
  /// out and moved on — attributing the *current* session past to it would
  /// claim causal edges the writer never had).
  void on_version_created(ClientId c, std::uint64_t op_id, KeyId key,
                          Timestamp ut, DcId sr, const VersionVector& dv);

  // --- client-visible operations (call *_issued before sending and *_reply
  // before absorbing the reply into the client engine) ---
  void on_get_issued(ClientId c, const proto::GetReq& req);
  void on_get_reply(ClientId c, const proto::GetReply& reply);
  void on_put_issued(ClientId c, const proto::PutReq& req);
  void on_put_reply(ClientId c, const proto::PutReply& reply);
  void on_tx_issued(ClientId c, const proto::RoTxReq& req);
  void on_tx_reply(ClientId c, const proto::RoTxReply& reply);

  /// HA-POCC: the session was re-initialized; all session state restarts and
  /// the session continues in pessimistic mode.
  void on_session_reset(ClientId c);

  /// HA-POCC: the session was promoted back to the optimistic protocol.
  void on_session_promoted(ClientId c);

  [[nodiscard]] std::uint32_t num_dcs() const { return num_dcs_; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }
  [[nodiscard]] std::uint64_t versions_registered() const {
    return versions_registered_;
  }

 private:
  /// Freshest version of each key in some causal past (keyed by interned id).
  using PastMap = std::unordered_map<KeyId, VersionId>;
  using PastMapPtr = std::shared_ptr<const PastMap>;

  struct VersionRecord {
    VersionId id;
    VersionVector dv;
    PastMapPtr past;  // writer's causal past at write time
  };
  struct Session {
    DcId dc = 0;
    bool snapshot_rdv = false;   // Cure*-style read vector
    bool pessimistic = false;    // HA fallback mode
    VersionVector dv;            // mirror of Alg. 1 DV_c
    VersionVector rdv;           // mirror of Alg. 1 RDV_c
    VersionVector rdv_at_issue;  // snapshot when the in-flight read left
    PastMap past;                // exact causal past, freshest per key
    /// Past snapshots of in-flight PUTs, keyed by the request's op_id (a
    /// request abandoned by its client can still execute much later).
    std::unordered_map<std::uint64_t, PastMapPtr> pending_put_pasts;
  };

  void fail(std::string msg) { violations_.push_back(std::move(msg)); }
  [[nodiscard]] const VersionRecord* find_version(KeyId key,
                                                  VersionId id) const;
  void absorb_read(Session& s, const proto::ReadItem& item);
  void check_read_item(ClientId c, Session& s, const proto::ReadItem& item,
                       const char* op);

  std::uint32_t num_dcs_;
  std::unordered_map<ClientId, Session> sessions_;
  std::unordered_map<KeyId, std::vector<VersionRecord>> registry_;
  std::vector<std::string> violations_;
  std::uint64_t checks_ = 0;
  std::uint64_t versions_registered_ = 0;
};

}  // namespace pocc::checker
