// Client-side operation histories and their replay into the HistoryChecker.
//
// The simulator wires the checker directly into the servers (versions are
// registered the instant a PUT executes). Across process boundaries that hook
// does not exist — but it is not needed: the server stores a PUT's version
// with dv equal to the request's DV verbatim (ReplicaBase::serve_put), so a
// client can reconstruct the full version record <k, ut, sr, dv> from its own
// PutReq + PutReply. Each session therefore records its operations in session
// order, and replay_history() feeds the merged logs through the checker
// offline.
//
// Replay ordering: the checker requires a version to be registered before any
// read returning it is absorbed. Client logs alone do not give one global
// order (client A's PutReply can reach A *after* client B already read the
// version on another connection), so the replayer runs a dependency-aware
// scheduler — a session's next event is processed only when every version it
// read has been registered; PUT replies are always processable. For any
// physically generated history this order exists (server-side apply order is
// acyclic in real time), so a stuck replay means the history itself is
// incomplete (e.g. a writer's log is missing) and is reported as such.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "checker/history_checker.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"

namespace pocc::checker {

/// HA-POCC session control points (§III-B), recorded like operations.
struct SessionReset {};
struct SessionPromoted {};

/// One entry of a session log: a request at issue time (captured before
/// sending, carrying the DV/RDV that went on the wire), a reply at receive
/// time (captured before the engine absorbed it), or a session-mode switch.
using HistoryEvent =
    std::variant<proto::GetReq, proto::PutReq, proto::RoTxReq,
                 proto::GetReply, proto::PutReply, proto::RoTxReply,
                 SessionReset, SessionPromoted>;

/// Everything one client session observed, in session order.
struct SessionHistory {
  ClientId client = 0;
  DcId dc = 0;
  bool snapshot_rdv = false;  // must match the ClientEngine mode
  std::vector<HistoryEvent> events;
};

struct ReplayResult {
  /// False when the scheduler wedged: some read returned a version no
  /// processed log wrote. Always a reportable problem — either a writer's
  /// log is missing from `sessions` or the store invented a version.
  bool complete = false;
  std::size_t events_replayed = 0;
  std::string error;  // set when !complete
};

/// Feed every session's log through `checker` in a dependency-respecting
/// order. `checker` must be freshly constructed (no sessions registered).
ReplayResult replay_history(const std::vector<SessionHistory>& sessions,
                            HistoryChecker& checker);

}  // namespace pocc::checker
