#include "proto/messages.hpp"

#include "store/key_space.hpp"

namespace pocc::proto {

namespace {

// Exact encoded sizes of the codec's building blocks (proto/codec.cpp). The
// constants here and in the codec are two views of one wire format; the codec
// asserts their agreement on every encode, so they cannot drift silently.
//
//   header   : 1-byte wire version + 1-byte message type
//   vv       : 1-byte entry count + 8 bytes per entry
//   key      : 2-byte length + the original key bytes (interner-recorded)
//   string   : 4-byte length + payload bytes (values, reasons)
//   key list : 4-byte count + per-key encoding
//   item list: 4-byte count + per-item encoding
constexpr std::size_t kHeaderBytes = 2;
constexpr std::size_t kClientIdBytes = 8;
constexpr std::size_t kNodeIdBytes = 8;
constexpr std::size_t kTimestampBytes = sizeof(Timestamp);
constexpr std::size_t kFlagBytes = 1;
constexpr std::size_t kCountBytes = 4;

std::size_t vv_bytes(const VersionVector& vv) {
  return 1 + static_cast<std::size_t>(vv.size()) * kTimestampBytes;
}

// Interned keys are charged at the original key's byte length (plus the
// 2-byte length marker the codec emits): the accounting model is unchanged
// by interning (§V metadata fairness).
std::size_t key_bytes(KeyId key) {
  return 2 + store::KeySpace::global().name_size(key);
}

std::size_t string_bytes(const std::string& s) { return 4 + s.size(); }

std::size_t key_list_bytes(const std::vector<KeyId>& keys) {
  std::size_t n = kCountBytes;
  for (const KeyId k : keys) n += key_bytes(k);
  return n;
}

// key + found flag + value + sr (4) + ut + dv. The measurement-only
// fresher_versions / unmerged_versions fields are transport framing.
std::size_t item_bytes(const ReadItem& it) {
  return key_bytes(it.key) + kFlagBytes + string_bytes(it.value) + 4 +
         kTimestampBytes + vv_bytes(it.dv);
}

std::size_t item_list_bytes(const std::vector<ReadItem>& items) {
  std::size_t n = kCountBytes;
  for (const auto& it : items) n += item_bytes(it);
  return n;
}

struct SizeVisitor {
  std::size_t operator()(const GetReq& m) const {
    return kHeaderBytes + kClientIdBytes + key_bytes(m.key) + vv_bytes(m.rdv) +
           kFlagBytes;
  }
  std::size_t operator()(const PutReq& m) const {
    return kHeaderBytes + kClientIdBytes + key_bytes(m.key) +
           string_bytes(m.value) + vv_bytes(m.dv) + kFlagBytes;
  }
  std::size_t operator()(const RoTxReq& m) const {
    return kHeaderBytes + kClientIdBytes + key_list_bytes(m.keys) +
           vv_bytes(m.rdv) + kFlagBytes;
  }
  std::size_t operator()(const GetReply& m) const {
    return kHeaderBytes + kClientIdBytes + item_bytes(m.item);
  }
  std::size_t operator()(const PutReply& m) const {
    return kHeaderBytes + kClientIdBytes + key_bytes(m.key) + kTimestampBytes +
           4;
  }
  std::size_t operator()(const RoTxReply& m) const {
    return kHeaderBytes + kClientIdBytes + item_list_bytes(m.items) +
           vv_bytes(m.tv);
  }
  std::size_t operator()(const SessionClosed& m) const {
    return kHeaderBytes + kClientIdBytes + string_bytes(m.reason);
  }
  std::size_t operator()(const Replicate& m) const {
    return kHeaderBytes + key_bytes(m.version.key) +
           string_bytes(m.version.value) + 4 + kTimestampBytes +
           vv_bytes(m.version.dv) + kFlagBytes;
  }
  std::size_t operator()(const Heartbeat&) const {
    return kHeaderBytes + 4 + kTimestampBytes;
  }
  std::size_t operator()(const SliceReq& m) const {
    return kHeaderBytes + 8 + kNodeIdBytes + key_list_bytes(m.keys) +
           vv_bytes(m.tv) + kFlagBytes;
  }
  std::size_t operator()(const SliceReply& m) const {
    return kHeaderBytes + 8 + item_list_bytes(m.items) + kFlagBytes;
  }
  std::size_t operator()(const GcReport& m) const {
    return kHeaderBytes + kNodeIdBytes + vv_bytes(m.low_watermark);
  }
  std::size_t operator()(const GcVector& m) const {
    return kHeaderBytes + vv_bytes(m.gv);
  }
  std::size_t operator()(const StabReport& m) const {
    return kHeaderBytes + kNodeIdBytes + vv_bytes(m.vv);
  }
  std::size_t operator()(const GssBroadcast& m) const {
    return kHeaderBytes + vv_bytes(m.gss);
  }
  std::size_t operator()(const RecoveryReq& m) const {
    return kHeaderBytes + kNodeIdBytes + vv_bytes(m.durable_vv);
  }
  std::size_t operator()(const RecoveryVersion& m) const {
    return kHeaderBytes + key_bytes(m.version.key) +
           string_bytes(m.version.value) + 4 + kTimestampBytes +
           vv_bytes(m.version.dv) + kFlagBytes;
  }
  std::size_t operator()(const RecoveryDone& m) const {
    return kHeaderBytes + kNodeIdBytes + vv_bytes(m.vv);
  }
  std::size_t operator()(const Overloaded&) const {
    return kHeaderBytes + kClientIdBytes + kTimestampBytes;
  }
  // Test-only, never encoded; nominal size kept for the routing tests.
  std::size_t operator()(const RouteProbe&) const { return 8; }
};

struct NameVisitor {
  const char* operator()(const GetReq&) const { return "GetReq"; }
  const char* operator()(const PutReq&) const { return "PutReq"; }
  const char* operator()(const RoTxReq&) const { return "RoTxReq"; }
  const char* operator()(const GetReply&) const { return "GetReply"; }
  const char* operator()(const PutReply&) const { return "PutReply"; }
  const char* operator()(const RoTxReply&) const { return "RoTxReply"; }
  const char* operator()(const SessionClosed&) const { return "SessionClosed"; }
  const char* operator()(const Replicate&) const { return "Replicate"; }
  const char* operator()(const Heartbeat&) const { return "Heartbeat"; }
  const char* operator()(const SliceReq&) const { return "SliceReq"; }
  const char* operator()(const SliceReply&) const { return "SliceReply"; }
  const char* operator()(const GcReport&) const { return "GcReport"; }
  const char* operator()(const GcVector&) const { return "GcVector"; }
  const char* operator()(const StabReport&) const { return "StabReport"; }
  const char* operator()(const GssBroadcast&) const { return "GssBroadcast"; }
  const char* operator()(const RecoveryReq&) const { return "RecoveryReq"; }
  const char* operator()(const RecoveryVersion&) const {
    return "RecoveryVersion";
  }
  const char* operator()(const RecoveryDone&) const { return "RecoveryDone"; }
  const char* operator()(const Overloaded&) const { return "Overloaded"; }
  const char* operator()(const RouteProbe&) const { return "RouteProbe"; }
};

}  // namespace

const char* message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

std::size_t wire_size(const Message& m) {
  return std::visit(SizeVisitor{}, m);
}

}  // namespace pocc::proto
