#include "proto/messages.hpp"

#include "store/key_space.hpp"

namespace pocc::proto {

namespace {

constexpr std::size_t kVectorBytes = sizeof(Timestamp);  // per VV entry

std::size_t vv_bytes(const VersionVector& vv) {
  return static_cast<std::size_t>(vv.size()) * kVectorBytes;
}

// Interned keys are charged at the original key's byte length: the wire
// model is unchanged by interning (§V metadata fairness).
std::size_t key_bytes(KeyId key) {
  return store::KeySpace::global().name_size(key);
}

std::size_t item_bytes(const ReadItem& it) {
  return key_bytes(it.key) + it.value.size() + vv_bytes(it.dv) + 16;
}

struct SizeVisitor {
  std::size_t operator()(const GetReq& m) const {
    return key_bytes(m.key) + vv_bytes(m.rdv) + 8;
  }
  std::size_t operator()(const PutReq& m) const {
    return key_bytes(m.key) + m.value.size() + vv_bytes(m.dv) + 8;
  }
  std::size_t operator()(const RoTxReq& m) const {
    std::size_t n = vv_bytes(m.rdv) + 8;
    for (const KeyId k : m.keys) n += key_bytes(k) + 2;
    return n;
  }
  std::size_t operator()(const GetReply& m) const {
    return item_bytes(m.item) + 8;
  }
  std::size_t operator()(const PutReply& m) const {
    return key_bytes(m.key) + 20;
  }
  std::size_t operator()(const RoTxReply& m) const {
    std::size_t n = vv_bytes(m.tv) + 8;
    for (const auto& it : m.items) n += item_bytes(it);
    return n;
  }
  std::size_t operator()(const SessionClosed& m) const {
    return m.reason.size() + 8;
  }
  std::size_t operator()(const Replicate& m) const {
    return key_bytes(m.version.key) + m.version.value.size() +
           vv_bytes(m.version.dv) + 16;
  }
  std::size_t operator()(const Heartbeat&) const { return 12; }
  std::size_t operator()(const SliceReq& m) const {
    std::size_t n = vv_bytes(m.tv) + 16;
    for (const KeyId k : m.keys) n += key_bytes(k) + 2;
    return n;
  }
  std::size_t operator()(const SliceReply& m) const {
    std::size_t n = 8;
    for (const auto& it : m.items) n += item_bytes(it);
    return n;
  }
  std::size_t operator()(const GcReport& m) const {
    return vv_bytes(m.low_watermark) + 8;
  }
  std::size_t operator()(const GcVector& m) const { return vv_bytes(m.gv); }
  std::size_t operator()(const StabReport& m) const {
    return vv_bytes(m.vv) + 8;
  }
  std::size_t operator()(const GssBroadcast& m) const {
    return vv_bytes(m.gss);
  }
  std::size_t operator()(const RouteProbe&) const { return 8; }
};

struct NameVisitor {
  const char* operator()(const GetReq&) const { return "GetReq"; }
  const char* operator()(const PutReq&) const { return "PutReq"; }
  const char* operator()(const RoTxReq&) const { return "RoTxReq"; }
  const char* operator()(const GetReply&) const { return "GetReply"; }
  const char* operator()(const PutReply&) const { return "PutReply"; }
  const char* operator()(const RoTxReply&) const { return "RoTxReply"; }
  const char* operator()(const SessionClosed&) const { return "SessionClosed"; }
  const char* operator()(const Replicate&) const { return "Replicate"; }
  const char* operator()(const Heartbeat&) const { return "Heartbeat"; }
  const char* operator()(const SliceReq&) const { return "SliceReq"; }
  const char* operator()(const SliceReply&) const { return "SliceReply"; }
  const char* operator()(const GcReport&) const { return "GcReport"; }
  const char* operator()(const GcVector&) const { return "GcVector"; }
  const char* operator()(const StabReport&) const { return "StabReport"; }
  const char* operator()(const GssBroadcast&) const { return "GssBroadcast"; }
  const char* operator()(const RouteProbe&) const { return "RouteProbe"; }
};

}  // namespace

const char* message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

std::size_t wire_size(const Message& m) {
  return std::visit(SizeVisitor{}, m);
}

}  // namespace pocc::proto
