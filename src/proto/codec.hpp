// Versioned, length-prefixed binary wire codec for proto::Message.
//
// This is the process-boundary twin of the in-memory message structs: the TCP
// deployment (net/tcp_transport.hpp, poccd, pocc_loadgen) exchanges exactly
// these frames. Layout of one frame:
//
//   u32  body length (little-endian, transport framing, never charged)
//   u8   wire version (kWireVersion; receivers reject other versions)
//   u8   message type (stable on-the-wire ids, see WireType)
//   ...  message payload, field by field, little-endian
//
// Keys cross the wire as their original strings: KeyIds are a *per-process*
// interning optimization and are meaningless to a remote peer. encode() reads
// the key bytes out of the sender's KeySpace; decode() re-interns them into
// the receiver's, so engines on both sides keep operating on dense 4-byte
// ids while the wire carries — and wire_size() charges — full key strings
// (docs/DESIGN.md, "Wire format").
//
// Byte-accounting honesty: encode() tallies the bytes belonging to protocol
// metadata (everything except op_id, the measurement-only fields and the
// frame length prefix) and asserts that the tally equals wire_size(m). The
// §V accounting model and the real wire format therefore cannot drift apart.
//
// decode_frame() is defensive: truncated, corrupted or absurd input yields a
// DecodeResult error (never a crash or an allocation bomb) — it is fuzzed by
// tests/codec_fuzz_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace pocc::proto {

/// Bumped on any incompatible layout change; receivers reject mismatches.
inline constexpr std::uint8_t kWireVersion = 1;

/// Size of the frame length prefix preceding every body.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Upper bound on one frame's body; larger lengths are treated as corruption.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Stable on-the-wire message-type ids. Values 0..14 deliberately mirror the
/// Message variant indices (static_asserted in codec.cpp); the 200+ range is
/// transport control traffic that never reaches a protocol engine.
enum class WireType : std::uint8_t {
  kGetReq = 0,
  kPutReq = 1,
  kRoTxReq = 2,
  kGetReply = 3,
  kPutReply = 4,
  kRoTxReply = 5,
  kSessionClosed = 6,
  kReplicate = 7,
  kHeartbeat = 8,
  kSliceReq = 9,
  kSliceReply = 10,
  kGcReport = 11,
  kGcVector = 12,
  kStabReport = 13,
  kGssBroadcast = 14,
  kNodeHello = 200,
  kClientHello = 201,
};

/// First frame on a server-to-server connection: who is dialing in. Lets the
/// receiver attribute subsequent frames on the connection to a NodeId.
struct NodeHello {
  NodeId node;
};

/// Optional first frame on a client connection (the server also learns
/// client -> connection bindings lazily from request frames).
struct ClientHello {
  ClientId client = 0;
};

/// Everything one frame can carry.
using Frame = std::variant<Message, NodeHello, ClientHello>;

/// Append one frame (length prefix + body) carrying `m` to `out`. Returns the
/// body size in bytes. Asserts that the charged protocol bytes equal
/// wire_size(m). RouteProbe (test-only) is not encodable and asserts.
std::size_t encode(const Message& m, std::vector<std::uint8_t>& out);

std::size_t encode(const NodeHello& h, std::vector<std::uint8_t>& out);
std::size_t encode(const ClientHello& h, std::vector<std::uint8_t>& out);

struct DecodeResult {
  enum class Status {
    kOk,        // `frame` holds the decoded frame, `consumed` bytes eaten
    kNeedMore,  // the buffer holds only part of a frame; feed more bytes
    kError,     // corrupted input; `error` explains, the connection is dead
  };
  Status status = Status::kNeedMore;
  Frame frame;
  std::size_t consumed = 0;  // bytes consumed from the input (prefix + body)
  std::string error;
};

/// Decode one frame from the front of [data, data+len). Key strings are
/// re-interned into the process-global KeySpace.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len);

}  // namespace pocc::proto
