// Versioned, length-prefixed binary wire codec for proto::Message.
//
// This is the process-boundary twin of the in-memory message structs: the TCP
// deployment (net/tcp_transport.hpp, poccd, pocc_loadgen) exchanges exactly
// these frames. Layout of one frame:
//
//   u32  body length (little-endian, transport framing, never charged)
//   u8   wire version (kWireVersion; receivers reject other versions)
//   u8   message type (stable on-the-wire ids, see WireType)
//   ...  message payload, field by field, little-endian
//
// Keys cross the wire as their original strings: KeyIds are a *per-process*
// interning optimization and are meaningless to a remote peer. encode() reads
// the key bytes out of the sender's KeySpace; decode() re-interns them into
// the receiver's, so engines on both sides keep operating on dense 4-byte
// ids while the wire carries — and wire_size() charges — full key strings
// (docs/DESIGN.md, "Wire format").
//
// Byte-accounting honesty: encode() tallies the bytes belonging to protocol
// metadata (everything except op_id, the measurement-only fields and the
// frame length prefix) and asserts that the tally equals wire_size(m). The
// §V accounting model and the real wire format therefore cannot drift apart.
//
// decode_frame() is defensive: truncated, corrupted or absurd input yields a
// DecodeResult error (never a crash or an allocation bomb) — it is fuzzed by
// tests/codec_fuzz_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace pocc::proto {

/// Bumped on any incompatible layout change; receivers reject mismatches.
/// v2: Batch frames (coalesced server-to-server traffic with explicit
/// per-message (from, to) routing envelopes — multi-partition hosting).
/// v3: crash-recovery handshake messages (RecoveryReq / RecoveryVersion /
/// RecoveryDone — durable WAL deployments, src/wal/).
/// v4: Overloaded replies (explicit admission-control refusal instead of
/// silent inbox growth — chaos-hardened deployments, net/tcp_node_host.cpp).
/// v5: ClientHello carries the client's preferred partition so the sharded
/// server can pin the connection to the event loop owning that partition's
/// worker (net/tcp_transport.hpp, "pinning").
inline constexpr std::uint8_t kWireVersion = 5;

/// Size of the frame length prefix preceding every body.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Upper bound on one frame's body; larger lengths are treated as corruption.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Stable on-the-wire message-type ids. Values 0..17 deliberately mirror the
/// Message variant indices (static_asserted in codec.cpp); the 200+ range is
/// transport control traffic that never reaches a protocol engine.
enum class WireType : std::uint8_t {
  kGetReq = 0,
  kPutReq = 1,
  kRoTxReq = 2,
  kGetReply = 3,
  kPutReply = 4,
  kRoTxReply = 5,
  kSessionClosed = 6,
  kReplicate = 7,
  kHeartbeat = 8,
  kSliceReq = 9,
  kSliceReply = 10,
  kGcReport = 11,
  kGcVector = 12,
  kStabReport = 13,
  kGssBroadcast = 14,
  kRecoveryReq = 15,
  kRecoveryVersion = 16,
  kRecoveryDone = 17,
  kOverloaded = 18,
  kNodeHello = 200,
  kClientHello = 201,
  kBatch = 202,
};

/// Highest wire id that is a protocol message (legal inside a Batch frame).
inline constexpr std::uint8_t kMaxProtocolWireType =
    static_cast<std::uint8_t>(WireType::kOverloaded);

/// First frame on a server-to-server connection: who is dialing in. Lets the
/// receiver attribute subsequent frames on the connection to a NodeId.
struct NodeHello {
  NodeId node;
};

/// preferred_part value meaning "no pinning preference".
inline constexpr PartitionId kNoPreferredPart = 0xffff'ffffu;

/// Optional first frame on a client connection (the server also learns
/// client -> connection bindings lazily from request frames). `client` 0
/// means the frame only pins: the connection pool greets with the partition
/// it dialed the connection for, and the server migrates the socket to the
/// event loop owning that partition's worker. (v5)
struct ClientHello {
  ClientId client = 0;
  PartitionId preferred_part = kNoPreferredPart;
};

/// One protocol message with its routing envelope, as carried inside a Batch
/// frame. Multi-partition hosts need the explicit (from, to) pair: a link
/// connects two *processes*, each hosting several (dc, partition) nodes, so
/// connection identity alone no longer names the endpoints.
struct RoutedMessage {
  NodeId from;
  NodeId to;
  Message msg;
};

/// Coalesced server-to-server traffic: every message a process accumulated
/// for one peer link since the last flush rides a single wire frame (Okapi /
/// Cure-style interval batching — amortizes the per-frame cost of update
/// propagation and stabilization traffic). Only protocol Messages may ride in
/// a batch; control frames and nested batches are rejected by the decoder.
struct BatchFrame {
  std::vector<RoutedMessage> items;
};

/// Per-envelope batching overhead in body bytes: from(8) + to(8) + the u32
/// sub-body length. The sub-body itself re-carries version + type, which are
/// already charged as protocol bytes by wire_size().
inline constexpr std::size_t kBatchItemOverheadBytes = 8 + 8 + 4;

/// Batch body bytes that are not per-item: outer version + type + u32 count.
inline constexpr std::size_t kBatchHeaderOverheadBytes = 1 + 1 + 4;

/// Everything one frame can carry.
using Frame = std::variant<Message, NodeHello, ClientHello, BatchFrame>;

/// Append one frame (length prefix + body) carrying `m` to `out`. Returns the
/// body size in bytes. Asserts that the charged protocol bytes equal
/// wire_size(m). RouteProbe (test-only) is not encodable and asserts.
std::size_t encode(const Message& m, std::vector<std::uint8_t>& out);

std::size_t encode(const NodeHello& h, std::vector<std::uint8_t>& out);
std::size_t encode(const ClientHello& h, std::vector<std::uint8_t>& out);

/// Byte split of one encoded batch: `protocol` is what wire_size() charges
/// across the contained messages (§V accounting, identical to sending each
/// message as its own frame); `overhead` is everything batching added — the
/// routing envelopes, sub-lengths, the batch header and the frame length
/// prefix. Tracked separately so the deployment can report how much framing
/// the coalescing policy costs/saves (docs/DESIGN.md deviation 8).
struct BatchEncodeStats {
  std::size_t protocol_bytes = 0;
  std::size_t overhead_bytes = 0;
};

/// Append one Batch frame carrying `batch` to `out`. Returns the body size.
/// Asserts the batch is non-empty and contains no RouteProbe. `stats`, when
/// given, receives the protocol/overhead byte split (including the length
/// prefix in overhead).
std::size_t encode(const BatchFrame& batch, std::vector<std::uint8_t>& out,
                   BatchEncodeStats* stats = nullptr);

/// Incremental Batch encoder for the per-link coalescing path: each add()
/// serializes the message straight into the staged frame (no second copy at
/// flush time), so the flush policy can bound batches by *exact* wire bytes.
/// flush_to() completes the frame and resets the writer for the next batch.
class BatchWriter {
 public:
  BatchWriter();

  /// Encode one routed message into the staged batch.
  void add(NodeId from, NodeId to, const Message& m);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Staged body size so far (what the wire frame's body will be).
  [[nodiscard]] std::size_t body_bytes() const { return buf_.size(); }
  /// Protocol/overhead split of the staged bytes (prefix not yet included).
  [[nodiscard]] const BatchEncodeStats& stats() const { return stats_; }

  /// Append the completed frame (length prefix + staged body) to `out` and
  /// reset to empty. Asserts at least one message was staged.
  std::size_t flush_to(std::vector<std::uint8_t>& out);

 private:
  std::vector<std::uint8_t> buf_;  // staged body: header + items
  std::size_t count_ = 0;
  BatchEncodeStats stats_;
};

struct DecodeResult {
  enum class Status {
    kOk,        // `frame` holds the decoded frame, `consumed` bytes eaten
    kNeedMore,  // the buffer holds only part of a frame; feed more bytes
    kError,     // corrupted input; `error` explains, the connection is dead
  };
  Status status = Status::kNeedMore;
  Frame frame;
  std::size_t consumed = 0;  // bytes consumed from the input (prefix + body)
  std::string error;
};

/// Decode one frame from the front of [data, data+len). Key strings are
/// re-interned into the process-global KeySpace.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len);

}  // namespace pocc::proto
