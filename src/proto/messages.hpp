// Wire messages exchanged between clients, servers and replicas.
//
// Client <-> server messages follow Algorithms 1 and 2 of the paper; server <->
// server messages cover update replication, heartbeats, RO-TX slices, the
// garbage-collection exchange and the (Cure* / HA-POCC) stabilization
// protocol. All channels are point-to-point, lossless and FIFO (§II-C).
//
// Keys travel as interned KeyIds (store/key_space.hpp) — a single-process
// optimization. On the wire (proto/codec.hpp) every key is carried as its
// original string and re-interned by the receiving process, and wire_size()
// charges the original key bytes via the interner, so the §V byte-accounting
// model is unchanged by interning.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "store/version.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::proto {

/// Client-observable metadata for one read item (GET reply or RO-TX item).
struct ReadItem {
  KeyId key = 0;
  bool found = false;
  std::string value;
  DcId sr = 0;          // source replica of the returned version
  Timestamp ut = 0;     // update time of the returned version
  VersionVector dv;     // dependency vector of the returned version
  // --- measurement-only fields (never used by the protocol) ---
  std::uint32_t fresher_versions = 0;   // versions fresher than the returned
  std::uint32_t unmerged_versions = 0;  // versions not yet stable in this DC
};

// ---------- client -> server ----------

// `op_id` on requests/replies is the client's per-session operation sequence
// number, echoed verbatim by the server — RPC framing that lets a client
// discard answers to operations it has abandoned (fault injection: a request
// can outlive its client-side timeout inside a crashed server's backlog and
// be answered much later). It rides the wire (the codec encodes it) but is
// not charged by wire_size(): it is transport framing, not protocol metadata
// (§V fairness accounting) — see the charging rule at wire_size() below.

/// <GETReq k, RDV_c> (Alg. 1 line 2). `pessimistic` marks requests from
/// sessions that fell back to the pessimistic protocol (HA-POCC, §IV-C).
struct GetReq {
  ClientId client = 0;
  KeyId key = 0;
  VersionVector rdv;
  bool pessimistic = false;
  std::uint64_t op_id = 0;
};

/// <PUTReq k, v, DV_c> (Alg. 1 line 10).
struct PutReq {
  ClientId client = 0;
  KeyId key = 0;
  std::string value;
  VersionVector dv;
  bool pessimistic = false;
  std::uint64_t op_id = 0;
};

/// <RO-TX-Req chi, RDV_c> (Alg. 1 line 15).
struct RoTxReq {
  ClientId client = 0;
  std::vector<KeyId> keys;
  VersionVector rdv;
  bool pessimistic = false;
  std::uint64_t op_id = 0;
};

// ---------- server -> client ----------

/// <GETReply v, ut, DV, sr> (Alg. 2 line 4) + measurement metadata.
struct GetReply {
  ClientId client = 0;
  ReadItem item;
  Duration blocked_us = 0;  // time the request spent parked (0 = no stall)
  std::uint64_t op_id = 0;  // echo of GetReq::op_id
};

/// <PUTReply ut> (Alg. 2 line 15).
struct PutReply {
  ClientId client = 0;
  KeyId key = 0;
  Timestamp ut = 0;
  DcId sr = 0;
  Duration blocked_us = 0;
  std::uint64_t op_id = 0;  // echo of PutReq::op_id
};

/// <RO-TX-Resp D> (Alg. 2 line 38).
struct RoTxReply {
  ClientId client = 0;
  std::vector<ReadItem> items;
  VersionVector tv;         // transaction snapshot vector (for the checker)
  Duration blocked_us = 0;  // max slice stall observed by the coordinator
  std::uint64_t op_id = 0;  // echo of RoTxReq::op_id
};

/// HA-POCC (§III-B): the server detected a (suspected) network partition while
/// this client's request was parked; the session must be re-initialized in
/// pessimistic mode.
struct SessionClosed {
  ClientId client = 0;
  std::string reason;
};

// ---------- server -> server ----------

/// <REPLICATE d> (Alg. 2 line 13): asynchronous update propagation, sent in
/// update-timestamp order to the replicas of the partition.
struct Replicate {
  store::Version version;
};

/// <HEARTBEAT ct> (Alg. 2 line 24): broadcast when a partition served no PUT
/// for Δ, so that remote version vectors keep advancing.
struct Heartbeat {
  DcId src_dc = 0;
  Timestamp ts = 0;
};

/// <SliceREQ chi_i, TV> (Alg. 2 line 34): transactional read of the keys this
/// partition owns, against snapshot TV.
struct SliceReq {
  std::uint64_t tx_id = 0;
  NodeId coordinator;
  std::vector<KeyId> keys;
  VersionVector tv;
  bool pessimistic = false;  // Cure* / HA fallback visibility rule
};

/// <SliceRESP D> (Alg. 2 line 47). `aborted` is set by HA-POCC when the slice
/// timed out waiting for a partitioned dependency; the coordinator then
/// closes the client's session instead of completing the transaction.
struct SliceReply {
  std::uint64_t tx_id = 0;
  std::vector<ReadItem> items;
  Duration blocked_us = 0;
  bool aborted = false;
};

/// Garbage-collection exchange (§IV-B): each node reports the entry-wise
/// minimum of its active transactions' snapshot vectors (or its VV when idle)
/// to the DC-local aggregator, which broadcasts the aggregate minimum GV.
struct GcReport {
  NodeId from;
  VersionVector low_watermark;
};
struct GcVector {
  VersionVector gv;
};

/// Stabilization protocol (Cure §IV-C; HA-POCC runs it infrequently): nodes
/// report their VV to the DC-local aggregator; the aggregate minimum is the
/// Global Stable Snapshot broadcast back to all nodes.
struct StabReport {
  NodeId from;
  VersionVector vv;
};
struct GssBroadcast {
  VersionVector gss;
};

/// Crash-recovery handshake (durable deployments, wire v3). A restarted
/// process replays its per-partition WAL, then asks every sibling replica for
/// the replication suffix it missed while down or lost past its last group
/// commit: <RecoveryREQ durable_vv> names the cut. The peer answers with a
/// stream of RecoveryVERSION records — every version in its store fresher
/// than the cut, regardless of source replica (this also reflects back the
/// recovering DC's own versions that were replicated out but arrived at the
/// peer ahead of a local fsync) — closed by <RecoveryDONE vv>. Because the
/// answers ride the same FIFO link as live Replicates, the recovering node's
/// VV may only be merged at DONE time, and the host keeps clients gated until
/// every sibling's DONE arrived (net/tcp_node_host.cpp).
struct RecoveryReq {
  NodeId from;
  VersionVector durable_vv;
};

/// One recovered version. Handled tolerantly: inserted idempotently (the
/// version chain dedupes on (ut, sr)), never subject to the Replicate
/// channel's timestamp-order assertion, and never raising the VV by itself.
struct RecoveryVersion {
  store::Version version;
};

struct RecoveryDone {
  NodeId from;
  VersionVector vv;
};

/// Overload shedding (wire v4): the server's admission control refused the
/// request instead of letting its inbox grow without bound. The op is *not*
/// executed — the client should back off for at least `retry_after_us` and
/// retry the same op_id (the server's idempotency cache makes the retry
/// exactly-once even if the original was admitted after all).
struct Overloaded {
  ClientId client = 0;
  Duration retry_after_us = 0;
  std::uint64_t op_id = 0;  // echo of the refused request's op_id
};

/// Test-only payload: counts copies and moves so tests can enforce the
/// zero-copy routing invariant (a Message is moved, never copied, from sender
/// to endpoint). Never sent by a protocol engine.
struct RouteProbe {
  struct Counters {
    std::uint64_t copies = 0;
    std::uint64_t moves = 0;
  };
  std::shared_ptr<Counters> counters;

  RouteProbe() = default;
  explicit RouteProbe(std::shared_ptr<Counters> c) : counters(std::move(c)) {}
  RouteProbe(const RouteProbe& o) : counters(o.counters) {
    if (counters) ++counters->copies;
  }
  RouteProbe& operator=(const RouteProbe& o) {
    counters = o.counters;
    if (counters) ++counters->copies;
    return *this;
  }
  RouteProbe(RouteProbe&& o) noexcept : counters(std::move(o.counters)) {
    if (counters) ++counters->moves;
  }
  RouteProbe& operator=(RouteProbe&& o) noexcept {
    counters = std::move(o.counters);
    if (counters) ++counters->moves;
    return *this;
  }
};

// RouteProbe sits last so the protocol alternatives keep their stable indices
// (SimNetwork::account and SimNode's priority classing switch on index()).
// New protocol messages are appended before it, never between existing ones.
using Message =
    std::variant<GetReq, PutReq, RoTxReq, GetReply, PutReply, RoTxReply,
                 SessionClosed, Replicate, Heartbeat, SliceReq, SliceReply,
                 GcReport, GcVector, StabReport, GssBroadcast, RecoveryReq,
                 RecoveryVersion, RecoveryDone, Overloaded, RouteProbe>;

/// Human-readable message-type name (logging / tests).
const char* message_name(const Message& m);

/// Exact serialized size in bytes of the message's *protocol* content (used
/// for network byte accounting — POCC and Cure* exchange the *same* metadata,
/// §V: "We can compare POCC and Cure* in a fair manner because the amount of
/// meta-data ... is the same"). Interned keys are charged at their original
/// byte length.
///
/// Charging rule: wire_size(m) == encoded frame body size (proto/codec.hpp)
/// minus the transport-framing fields the codec additionally carries — op_id
/// on requests/replies, the measurement-only blocked_us / fresher_versions /
/// unmerged_versions fields, and the 4-byte frame length prefix. The codec
/// asserts this equality on every encode, so the §V accounting can never
/// drift from the real wire format. (RouteProbe is test-only, never encoded;
/// its nominal 8 bytes are kept for the zero-copy routing tests.)
std::size_t wire_size(const Message& m);

}  // namespace pocc::proto
