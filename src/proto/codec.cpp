#include "proto/codec.hpp"

#include <cstring>
#include <limits>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"
#include "store/key_space.hpp"

namespace pocc::proto {

namespace {

// The 0..14 wire ids must track the Message variant order: SimNetwork's
// accounting and SimNode's priority classing switch on index(), and the codec
// reuses it as the on-the-wire type tag.
template <WireType W, typename T>
constexpr bool kMatches =
    std::is_same_v<std::variant_alternative_t<static_cast<std::size_t>(W),
                                              Message>,
                   T>;
static_assert(kMatches<WireType::kGetReq, GetReq> &&
                  kMatches<WireType::kPutReq, PutReq> &&
                  kMatches<WireType::kRoTxReq, RoTxReq> &&
                  kMatches<WireType::kGetReply, GetReply> &&
                  kMatches<WireType::kPutReply, PutReply> &&
                  kMatches<WireType::kRoTxReply, RoTxReply> &&
                  kMatches<WireType::kSessionClosed, SessionClosed> &&
                  kMatches<WireType::kReplicate, Replicate> &&
                  kMatches<WireType::kHeartbeat, Heartbeat> &&
                  kMatches<WireType::kSliceReq, SliceReq> &&
                  kMatches<WireType::kSliceReply, SliceReply> &&
                  kMatches<WireType::kGcReport, GcReport> &&
                  kMatches<WireType::kGcVector, GcVector> &&
                  kMatches<WireType::kStabReport, StabReport> &&
                  kMatches<WireType::kGssBroadcast, GssBroadcast> &&
                  kMatches<WireType::kRecoveryReq, RecoveryReq> &&
                  kMatches<WireType::kRecoveryVersion, RecoveryVersion> &&
                  kMatches<WireType::kRecoveryDone, RecoveryDone> &&
                  kMatches<WireType::kOverloaded, Overloaded>,
              "wire ids must match the Message variant order");

/// Whether a write counts toward wire_size() (protocol metadata) or is
/// transport framing / measurement-only (see messages.hpp charging rule).
enum class Charge : bool { kNo = false, kYes = true };

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v, Charge c) { raw(&v, 1, c); }
  void u16(std::uint16_t v, Charge c) { put_le(v, c); }
  void u32(std::uint32_t v, Charge c) { put_le(v, c); }
  void u64(std::uint64_t v, Charge c) { put_le(v, c); }
  void i64(std::int64_t v, Charge c) {
    put_le(static_cast<std::uint64_t>(v), c);
  }
  void raw(const void* p, std::size_t n, Charge c) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
    if (c == Charge::kYes) charged_ += n;
  }

  [[nodiscard]] std::size_t charged() const { return charged_; }

 private:
  template <typename T>
  void put_le(T v, Charge c) {
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    raw(buf, sizeof(T), c);
  }

  std::vector<std::uint8_t>& out_;
  std::size_t charged_ = 0;
};

void put_header(Writer& w, WireType type) {
  w.u8(kWireVersion, Charge::kYes);
  w.u8(static_cast<std::uint8_t>(type), Charge::kYes);
}

void put_vv(Writer& w, const VersionVector& vv) {
  w.u8(static_cast<std::uint8_t>(vv.size()), Charge::kYes);
  for (std::uint32_t i = 0; i < vv.size(); ++i) w.i64(vv[i], Charge::kYes);
}

/// Keys cross process boundaries as their original strings (KeyIds are
/// per-process); charged at original length + 2-byte marker.
void put_key(Writer& w, KeyId key) {
  const std::string_view name = store::KeySpace::global().name(key);
  POCC_ASSERT_MSG(name.size() <= std::numeric_limits<std::uint16_t>::max(),
                  "key longer than the wire format's 64 KiB limit");
  w.u16(static_cast<std::uint16_t>(name.size()), Charge::kYes);
  w.raw(name.data(), name.size(), Charge::kYes);
}

void put_string(Writer& w, const std::string& s, Charge c) {
  w.u32(static_cast<std::uint32_t>(s.size()), c);
  w.raw(s.data(), s.size(), c);
}

void put_node(Writer& w, NodeId n) {
  w.u32(n.dc, Charge::kYes);
  w.u32(n.part, Charge::kYes);
}

void put_key_list(Writer& w, const std::vector<KeyId>& keys) {
  w.u32(static_cast<std::uint32_t>(keys.size()), Charge::kYes);
  for (const KeyId k : keys) put_key(w, k);
}

void put_item(Writer& w, const ReadItem& it) {
  put_key(w, it.key);
  w.u8(it.found ? 1 : 0, Charge::kYes);
  put_string(w, it.value, Charge::kYes);
  w.u32(it.sr, Charge::kYes);
  w.i64(it.ut, Charge::kYes);
  put_vv(w, it.dv);
  // Measurement-only fields ride along uncharged so decode round-trips
  // exactly (the checker and tests compare full structs).
  w.u32(it.fresher_versions, Charge::kNo);
  w.u32(it.unmerged_versions, Charge::kNo);
}

void put_item_list(Writer& w, const std::vector<ReadItem>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()), Charge::kYes);
  for (const ReadItem& it : items) put_item(w, it);
}

struct EncodeVisitor {
  Writer& w;

  void operator()(const GetReq& m) const {
    put_header(w, WireType::kGetReq);
    w.u64(m.client, Charge::kYes);
    put_key(w, m.key);
    put_vv(w, m.rdv);
    w.u8(m.pessimistic ? 1 : 0, Charge::kYes);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const PutReq& m) const {
    put_header(w, WireType::kPutReq);
    w.u64(m.client, Charge::kYes);
    put_key(w, m.key);
    put_string(w, m.value, Charge::kYes);
    put_vv(w, m.dv);
    w.u8(m.pessimistic ? 1 : 0, Charge::kYes);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const RoTxReq& m) const {
    put_header(w, WireType::kRoTxReq);
    w.u64(m.client, Charge::kYes);
    put_key_list(w, m.keys);
    put_vv(w, m.rdv);
    w.u8(m.pessimistic ? 1 : 0, Charge::kYes);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const GetReply& m) const {
    put_header(w, WireType::kGetReply);
    w.u64(m.client, Charge::kYes);
    put_item(w, m.item);
    w.i64(m.blocked_us, Charge::kNo);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const PutReply& m) const {
    put_header(w, WireType::kPutReply);
    w.u64(m.client, Charge::kYes);
    put_key(w, m.key);
    w.i64(m.ut, Charge::kYes);
    w.u32(m.sr, Charge::kYes);
    w.i64(m.blocked_us, Charge::kNo);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const RoTxReply& m) const {
    put_header(w, WireType::kRoTxReply);
    w.u64(m.client, Charge::kYes);
    put_item_list(w, m.items);
    put_vv(w, m.tv);
    w.i64(m.blocked_us, Charge::kNo);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const SessionClosed& m) const {
    put_header(w, WireType::kSessionClosed);
    w.u64(m.client, Charge::kYes);
    put_string(w, m.reason, Charge::kYes);
  }
  void operator()(const Replicate& m) const {
    put_header(w, WireType::kReplicate);
    put_key(w, m.version.key);
    put_string(w, m.version.value, Charge::kYes);
    w.u32(m.version.sr, Charge::kYes);
    w.i64(m.version.ut, Charge::kYes);
    put_vv(w, m.version.dv);
    w.u8(m.version.opt_origin ? 1 : 0, Charge::kYes);
  }
  void operator()(const Heartbeat& m) const {
    put_header(w, WireType::kHeartbeat);
    w.u32(m.src_dc, Charge::kYes);
    w.i64(m.ts, Charge::kYes);
  }
  void operator()(const SliceReq& m) const {
    put_header(w, WireType::kSliceReq);
    w.u64(m.tx_id, Charge::kYes);
    put_node(w, m.coordinator);
    put_key_list(w, m.keys);
    put_vv(w, m.tv);
    w.u8(m.pessimistic ? 1 : 0, Charge::kYes);
  }
  void operator()(const SliceReply& m) const {
    put_header(w, WireType::kSliceReply);
    w.u64(m.tx_id, Charge::kYes);
    put_item_list(w, m.items);
    w.u8(m.aborted ? 1 : 0, Charge::kYes);
    w.i64(m.blocked_us, Charge::kNo);
  }
  void operator()(const GcReport& m) const {
    put_header(w, WireType::kGcReport);
    put_node(w, m.from);
    put_vv(w, m.low_watermark);
  }
  void operator()(const GcVector& m) const {
    put_header(w, WireType::kGcVector);
    put_vv(w, m.gv);
  }
  void operator()(const StabReport& m) const {
    put_header(w, WireType::kStabReport);
    put_node(w, m.from);
    put_vv(w, m.vv);
  }
  void operator()(const GssBroadcast& m) const {
    put_header(w, WireType::kGssBroadcast);
    put_vv(w, m.gss);
  }
  void operator()(const RecoveryReq& m) const {
    put_header(w, WireType::kRecoveryReq);
    put_node(w, m.from);
    put_vv(w, m.durable_vv);
  }
  void operator()(const RecoveryVersion& m) const {
    put_header(w, WireType::kRecoveryVersion);
    put_key(w, m.version.key);
    put_string(w, m.version.value, Charge::kYes);
    w.u32(m.version.sr, Charge::kYes);
    w.i64(m.version.ut, Charge::kYes);
    put_vv(w, m.version.dv);
    w.u8(m.version.opt_origin ? 1 : 0, Charge::kYes);
  }
  void operator()(const RecoveryDone& m) const {
    put_header(w, WireType::kRecoveryDone);
    put_node(w, m.from);
    put_vv(w, m.vv);
  }
  void operator()(const Overloaded& m) const {
    put_header(w, WireType::kOverloaded);
    w.u64(m.client, Charge::kYes);
    w.i64(m.retry_after_us, Charge::kYes);
    w.u64(m.op_id, Charge::kNo);
  }
  void operator()(const RouteProbe&) const {
    POCC_ASSERT_MSG(false, "RouteProbe is test-only and never encoded");
  }
};

// ------------------------------------------------------------- decoding ----

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  /// Raw read position (batch decoding carves sub-readers out of the body).
  [[nodiscard]] const std::uint8_t* cursor() const { return p_; }
  /// Advance past `n` bytes the caller consumed through a sub-reader.
  void skip(std::size_t n) {
    if (need(n, "skipped bytes")) p_ += n;
  }

  void fail(std::string msg) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(msg);
    }
  }

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  VersionVector vv() {
    const std::uint8_t n = u8();
    if (!ok_) return {};
    if (n == 0) return {};  // default-constructed (size 0) vector
    if (n > kMaxDcs) {
      fail("version vector wider than kMaxDcs");
      return {};
    }
    VersionVector v(n);
    for (std::uint8_t i = 0; i < n && ok_; ++i) v.set(i, i64());
    return v;
  }

  /// Key string off the wire, re-interned into this process's KeySpace.
  KeyId key() {
    const std::uint16_t n = u16();
    if (!ok_ || !need(n, "key bytes")) return 0;
    const auto* s = reinterpret_cast<const char*>(p_);
    p_ += n;
    return store::KeySpace::global().intern(std::string_view(s, n));
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || !need(n, "string bytes")) return {};
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  NodeId node() {
    NodeId n;
    n.dc = u32();
    n.part = u32();
    return n;
  }

  std::vector<KeyId> key_list() {
    const std::uint32_t n = u32();
    std::vector<KeyId> keys;
    // Each key costs >= 2 bytes on the wire; an implausible count is
    // corruption, not a reason to pre-allocate gigabytes.
    if (!ok_ || n > remaining() / 2 + 1) {
      fail("implausible key count");
      return keys;
    }
    keys.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) keys.push_back(key());
    return keys;
  }

  ReadItem item() {
    ReadItem it;
    it.key = key();
    it.found = u8() != 0;
    it.value = str();
    it.sr = u32();
    it.ut = i64();
    it.dv = vv();
    it.fresher_versions = u32();
    it.unmerged_versions = u32();
    return it;
  }

  std::vector<ReadItem> item_list() {
    const std::uint32_t n = u32();
    std::vector<ReadItem> items;
    if (!ok_ || n > remaining() / 20 + 1) {  // >= ~20 bytes per item
      fail("implausible item count");
      return items;
    }
    items.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) items.push_back(item());
    return items;
  }

 private:
  bool need(std::size_t n, const char* what) {
    if (remaining() >= n) return true;
    fail(std::string("truncated frame: ") + what);
    return false;
  }

  template <typename T>
  T get_le() {
    if (!need(sizeof(T), "fixed field")) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<std::uint64_t>(p_[i]) << (8 * i)));
    }
    p_ += sizeof(T);
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
  std::string error_;
};

Frame decode_body(Reader& r, WireType type);

/// One routed sub-message of a Batch body: envelope, sub-length, then a full
/// (version + type + payload) message body. Only protocol messages are legal
/// — control frames and nested batches are corruption.
bool decode_batch_item(Reader& r, RoutedMessage* out) {
  out->from = r.node();
  out->to = r.node();
  const std::uint32_t len = r.u32();
  if (!r.ok()) return false;
  if (len < 2 || len > r.remaining()) {
    r.fail("truncated batch item");
    return false;
  }
  Reader sub(r.cursor(), len);
  const std::uint8_t version = sub.u8();
  if (version != kWireVersion) {
    r.fail("unsupported wire version inside batch");
    return false;
  }
  const std::uint8_t type = sub.u8();
  if (type > kMaxProtocolWireType) {
    r.fail("batch item is not a protocol message");
    return false;
  }
  Frame f = decode_body(sub, static_cast<WireType>(type));
  if (!sub.ok()) {
    r.fail(sub.error());
    return false;
  }
  if (sub.remaining() != 0) {
    r.fail("trailing bytes in batch item");
    return false;
  }
  r.skip(len);
  out->msg = std::move(std::get<Message>(f));
  return true;
}

Frame decode_body(Reader& r, WireType type) {
  switch (type) {
    case WireType::kGetReq: {
      GetReq m;
      m.client = r.u64();
      m.key = r.key();
      m.rdv = r.vv();
      m.pessimistic = r.u8() != 0;
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kPutReq: {
      PutReq m;
      m.client = r.u64();
      m.key = r.key();
      m.value = r.str();
      m.dv = r.vv();
      m.pessimistic = r.u8() != 0;
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kRoTxReq: {
      RoTxReq m;
      m.client = r.u64();
      m.keys = r.key_list();
      m.rdv = r.vv();
      m.pessimistic = r.u8() != 0;
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kGetReply: {
      GetReply m;
      m.client = r.u64();
      m.item = r.item();
      m.blocked_us = r.i64();
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kPutReply: {
      PutReply m;
      m.client = r.u64();
      m.key = r.key();
      m.ut = r.i64();
      m.sr = r.u32();
      m.blocked_us = r.i64();
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kRoTxReply: {
      RoTxReply m;
      m.client = r.u64();
      m.items = r.item_list();
      m.tv = r.vv();
      m.blocked_us = r.i64();
      m.op_id = r.u64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kSessionClosed: {
      SessionClosed m;
      m.client = r.u64();
      m.reason = r.str();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kReplicate: {
      Replicate m;
      m.version.key = r.key();
      m.version.value = r.str();
      m.version.sr = r.u32();
      m.version.ut = r.i64();
      m.version.dv = r.vv();
      m.version.opt_origin = r.u8() != 0;
      return Frame{Message{std::move(m)}};
    }
    case WireType::kHeartbeat: {
      Heartbeat m;
      m.src_dc = r.u32();
      m.ts = r.i64();
      return Frame{Message{m}};
    }
    case WireType::kSliceReq: {
      SliceReq m;
      m.tx_id = r.u64();
      m.coordinator = r.node();
      m.keys = r.key_list();
      m.tv = r.vv();
      m.pessimistic = r.u8() != 0;
      return Frame{Message{std::move(m)}};
    }
    case WireType::kSliceReply: {
      SliceReply m;
      m.tx_id = r.u64();
      m.items = r.item_list();
      m.aborted = r.u8() != 0;
      m.blocked_us = r.i64();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kGcReport: {
      GcReport m;
      m.from = r.node();
      m.low_watermark = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kGcVector: {
      GcVector m;
      m.gv = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kStabReport: {
      StabReport m;
      m.from = r.node();
      m.vv = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kGssBroadcast: {
      GssBroadcast m;
      m.gss = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kRecoveryReq: {
      RecoveryReq m;
      m.from = r.node();
      m.durable_vv = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kRecoveryVersion: {
      RecoveryVersion m;
      m.version.key = r.key();
      m.version.value = r.str();
      m.version.sr = r.u32();
      m.version.ut = r.i64();
      m.version.dv = r.vv();
      m.version.opt_origin = r.u8() != 0;
      return Frame{Message{std::move(m)}};
    }
    case WireType::kRecoveryDone: {
      RecoveryDone m;
      m.from = r.node();
      m.vv = r.vv();
      return Frame{Message{std::move(m)}};
    }
    case WireType::kOverloaded: {
      Overloaded m;
      m.client = r.u64();
      m.retry_after_us = r.i64();
      m.op_id = r.u64();
      return Frame{Message{m}};
    }
    case WireType::kNodeHello: {
      NodeHello h;
      h.node = r.node();
      return Frame{h};
    }
    case WireType::kClientHello: {
      ClientHello h;
      h.client = r.u64();
      h.preferred_part = r.u32();
      return Frame{h};
    }
    case WireType::kBatch: {
      const std::uint32_t n = r.u32();
      BatchFrame batch;
      if (!r.ok()) return Frame{};
      if (n == 0) {
        r.fail("empty batch");
        return Frame{};
      }
      // Each item costs at least its envelope + a 2-byte sub-body.
      if (n > r.remaining() / (kBatchItemOverheadBytes + 2) + 1) {
        r.fail("implausible batch count");
        return Frame{};
      }
      batch.items.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        RoutedMessage item;
        if (!decode_batch_item(r, &item)) return Frame{};
        batch.items.push_back(std::move(item));
      }
      return Frame{std::move(batch)};
    }
  }
  r.fail("unknown message type " + std::to_string(static_cast<int>(type)));
  return Frame{};
}

bool known_type(std::uint8_t t) {
  return t <= kMaxProtocolWireType ||
         t == static_cast<std::uint8_t>(WireType::kNodeHello) ||
         t == static_cast<std::uint8_t>(WireType::kClientHello) ||
         t == static_cast<std::uint8_t>(WireType::kBatch);
}

/// Reserve the length prefix, encode via `fn`, then patch the prefix.
template <typename Fn>
std::size_t encode_with_prefix(std::vector<std::uint8_t>& out, Fn&& fn) {
  const std::size_t prefix_at = out.size();
  out.insert(out.end(), kFrameHeaderBytes, 0);
  Writer w(out);
  std::size_t charged = fn(w);
  const std::size_t body = out.size() - prefix_at - kFrameHeaderBytes;
  POCC_ASSERT_MSG(body <= kMaxFrameBytes, "frame exceeds kMaxFrameBytes");
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    out[prefix_at + i] = static_cast<std::uint8_t>(body >> (8 * i));
  }
  (void)charged;
  return body;
}

}  // namespace

std::size_t encode(const Message& m, std::vector<std::uint8_t>& out) {
  std::size_t charged = 0;
  const std::size_t body = encode_with_prefix(out, [&](Writer& w) {
    std::visit(EncodeVisitor{w}, m);
    charged = w.charged();
    return charged;
  });
  // The §V accounting model and the real wire format must agree exactly
  // (messages.hpp charging rule); any new or resized field shows up here.
  POCC_ASSERT_MSG(charged == wire_size(m),
                  "encoded protocol bytes diverged from wire_size()");
  return body;
}

std::size_t encode(const NodeHello& h, std::vector<std::uint8_t>& out) {
  return encode_with_prefix(out, [&](Writer& w) {
    put_header(w, WireType::kNodeHello);
    put_node(w, h.node);
    return w.charged();
  });
}

std::size_t encode(const ClientHello& h, std::vector<std::uint8_t>& out) {
  return encode_with_prefix(out, [&](Writer& w) {
    put_header(w, WireType::kClientHello);
    w.u64(h.client, Charge::kYes);
    w.u32(h.preferred_part, Charge::kYes);
    return w.charged();
  });
}

// ------------------------------------------------------------- batching ----

BatchWriter::BatchWriter() = default;

void BatchWriter::add(NodeId from, NodeId to, const Message& m) {
  if (buf_.empty()) {
    // Lazily start the staged body: outer version + type + count placeholder
    // (patched by flush_to). All of it is batching overhead, never §V
    // protocol bytes — the per-message version/type live in the sub-bodies.
    buf_.push_back(kWireVersion);
    buf_.push_back(static_cast<std::uint8_t>(WireType::kBatch));
    buf_.insert(buf_.end(), 4, 0);
    stats_.overhead_bytes += kBatchHeaderOverheadBytes;
  }
  Writer w(buf_);
  w.u32(from.dc, Charge::kNo);
  w.u32(from.part, Charge::kNo);
  w.u32(to.dc, Charge::kNo);
  w.u32(to.part, Charge::kNo);
  const std::size_t len_at = buf_.size();
  w.u32(0, Charge::kNo);  // sub-body length, patched below
  const std::size_t sub_start = buf_.size();
  std::visit(EncodeVisitor{w}, m);
  const std::size_t sub_len = buf_.size() - sub_start;
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[len_at + i] = static_cast<std::uint8_t>(sub_len >> (8 * i));
  }
  // Same honesty rule as standalone frames: the charged bytes of every
  // batched message must equal its wire_size().
  POCC_ASSERT_MSG(w.charged() == wire_size(m),
                  "batched protocol bytes diverged from wire_size()");
  stats_.protocol_bytes += w.charged();
  stats_.overhead_bytes += kBatchItemOverheadBytes;
  ++count_;
}

std::size_t BatchWriter::flush_to(std::vector<std::uint8_t>& out) {
  POCC_ASSERT_MSG(count_ > 0, "flushing an empty batch");
  const std::size_t count = count_;
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[2 + i] = static_cast<std::uint8_t>(count >> (8 * i));
  }
  const std::size_t body = buf_.size();
  POCC_ASSERT_MSG(body <= kMaxFrameBytes, "batch exceeds kMaxFrameBytes");
  out.reserve(out.size() + kFrameHeaderBytes + body);
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(body >> (8 * i)));
  }
  out.insert(out.end(), buf_.begin(), buf_.end());
  buf_.clear();
  count_ = 0;
  stats_ = BatchEncodeStats{};
  return body;
}

std::size_t encode(const BatchFrame& batch, std::vector<std::uint8_t>& out,
                   BatchEncodeStats* stats) {
  BatchWriter w;
  for (const RoutedMessage& item : batch.items) {
    w.add(item.from, item.to, item.msg);
  }
  if (stats != nullptr) {
    *stats = w.stats();
    stats->overhead_bytes += kFrameHeaderBytes;
  }
  return w.flush_to(out);
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len) {
  DecodeResult res;
  if (len < kFrameHeaderBytes) return res;  // kNeedMore
  std::size_t body = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    body |= static_cast<std::size_t>(data[i]) << (8 * i);
  }
  if (body > kMaxFrameBytes) {
    res.status = DecodeResult::Status::kError;
    res.error = "frame length " + std::to_string(body) + " exceeds limit";
    return res;
  }
  if (len < kFrameHeaderBytes + body) return res;  // kNeedMore
  res.consumed = kFrameHeaderBytes + body;

  Reader r(data + kFrameHeaderBytes, body);
  if (body < 2) {
    res.status = DecodeResult::Status::kError;
    res.error = "frame too short for version + type";
    return res;
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    res.status = DecodeResult::Status::kError;
    res.error = "unsupported wire version " + std::to_string(version);
    return res;
  }
  const std::uint8_t type = r.u8();
  if (!known_type(type)) {
    res.status = DecodeResult::Status::kError;
    res.error = "unknown message type " + std::to_string(type);
    return res;
  }
  Frame frame = decode_body(r, static_cast<WireType>(type));
  if (!r.ok()) {
    res.status = DecodeResult::Status::kError;
    res.error = r.error();
    return res;
  }
  if (r.remaining() != 0) {
    res.status = DecodeResult::Status::kError;
    res.error = std::to_string(r.remaining()) + " trailing bytes in frame";
    return res;
  }
  res.status = DecodeResult::Status::kOk;
  res.frame = std::move(frame);
  return res;
}

}  // namespace pocc::proto
