#include "client/client_engine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pocc::client {

ClientEngine::ClientEngine(ClientId id, DcId dc, std::uint32_t num_dcs,
                           bool snapshot_rdv)
    : id_(id), dc_(dc), dv_(num_dcs), rdv_(num_dcs),
      snapshot_rdv_(snapshot_rdv) {
  POCC_ASSERT(dc < num_dcs);
}

proto::GetReq ClientEngine::make_get(KeyId key) const {
  proto::GetReq req;
  req.client = id_;
  req.key = key;
  req.rdv = rdv_;
  req.pessimistic = pessimistic_;
  return req;
}

proto::PutReq ClientEngine::make_put(KeyId key, std::string value) const {
  proto::PutReq req;
  req.client = id_;
  req.key = key;
  req.value = std::move(value);
  req.dv = dv_;
  req.pessimistic = pessimistic_;
  return req;
}

proto::RoTxReq ClientEngine::make_ro_tx(std::vector<KeyId> keys) const {
  proto::RoTxReq req;
  req.client = id_;
  req.keys = std::move(keys);
  // Alg. 1 line 15 sends RDV_c; we send DV_c (>= RDV_c entry-wise) instead.
  // The paper's Prop. 4 proof assumes the snapshot "includes every item read
  // or written by c" — the commit times of c's own writes and direct reads
  // live only in DV, and under clock skew the coordinator's VV does not
  // necessarily cover them. Carrying DV closes that window at identical
  // metadata cost. See docs/DESIGN.md ("Deviations").
  req.rdv = dv_;
  req.pessimistic = pessimistic_;
  return req;
}

void ClientEngine::absorb_read_item(const proto::ReadItem& item) {
  if (!item.found) return;  // implicit initial version: no dependencies
  rdv_.merge_max(item.dv);  // track transitive dependencies
  if (snapshot_rdv_ || pessimistic_) {
    // Pessimistic visibility is commit-vector gated: the read vector must
    // cover the read item itself, not only its dependencies.
    rdv_.raise(item.sr, item.ut);
  }
  dv_.merge_max(rdv_);
  dv_.raise(item.sr, item.ut);  // direct dependency on the read version
}

void ClientEngine::absorb_get(const proto::GetReply& reply) {
  POCC_ASSERT(reply.client == id_);
  absorb_read_item(reply.item);
}

void ClientEngine::absorb_put(const proto::PutReply& reply) {
  POCC_ASSERT(reply.client == id_);
  POCC_ASSERT_MSG(reply.sr == dc_, "session must stick to its data center");
  dv_.raise(dc_, reply.ut);
}

void ClientEngine::absorb_ro_tx(const proto::RoTxReply& reply) {
  POCC_ASSERT(reply.client == id_);
  for (const proto::ReadItem& item : reply.items) {
    absorb_read_item(item);
  }
}

void ClientEngine::reinitialize_pessimistic() {
  const std::uint32_t num_dcs = dv_.size();
  dv_ = VersionVector(num_dcs);
  rdv_ = VersionVector(num_dcs);
  pessimistic_ = true;
  ++session_generation_;
}

void ClientEngine::promote_optimistic() {
  if (!pessimistic_) return;
  pessimistic_ = false;
  ++session_generation_;
}

}  // namespace pocc::client
