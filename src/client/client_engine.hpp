// Client-side protocol engine — Algorithm 1 of the paper.
//
// The client carries the dependency meta-data that makes OCC's lazy
// dependency resolution possible: a dependency vector DV (everything the
// client's next write must causally follow) and a read-dependency vector RDV
// (the dependencies of everything the client has read, supplied with each
// read so servers can detect missing dependencies).
//
// The same engine drives POCC and Cure* sessions — the algorithms are
// identical client-side; only the server visibility rules differ. For HA-POCC
// the engine additionally supports session re-initialization into pessimistic
// mode after a server-detected network partition (§III-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::client {

class ClientEngine {
 public:
  /// `dc` is the data center the session is sticky to (§II-C).
  ///
  /// `snapshot_rdv`: when true, the RDV additionally absorbs the *commit
  /// time* of every item read (RDV[sr] raised to ut). Pessimistic protocols
  /// (Cure*, and HA-POCC sessions in fallback mode) gate visibility on the
  /// item's commit vector, so their sessions must carry a snapshot-inclusive
  /// read vector — this mirrors the snapshot vector Cure clients maintain and
  /// costs no extra metadata (still one timestamp per DC). POCC's Algorithm 1
  /// does not need it: the freshest-version read rule plus partition
  /// stickiness already cover re-reads (§IV-B discussion).
  ClientEngine(ClientId id, DcId dc, std::uint32_t num_dcs,
               bool snapshot_rdv = false);

  // ----- request construction (Alg. 1 sends) -----
  [[nodiscard]] proto::GetReq make_get(KeyId key) const;
  [[nodiscard]] proto::PutReq make_put(KeyId key, std::string value) const;
  [[nodiscard]] proto::RoTxReq make_ro_tx(std::vector<KeyId> keys) const;

  // ----- reply absorption (Alg. 1 dependency tracking) -----
  /// Alg. 1 lines 4-6: RDV <- max(RDV, DV_item); DV <- max(RDV, DV);
  /// DV[sr] <- max(DV[sr], ut).
  void absorb_get(const proto::GetReply& reply);
  /// Alg. 1 line 12: DV[m] <- ut.
  void absorb_put(const proto::PutReply& reply);
  /// Alg. 1 lines 17-19: each returned item is absorbed as if read by a GET.
  void absorb_ro_tx(const proto::RoTxReply& reply);

  // ----- HA-POCC session control (§III-B) -----
  /// Re-initialize the session after a SessionClosed: dependency vectors are
  /// dropped (the new session may not see items read/written before) and the
  /// session switches to the pessimistic protocol.
  void reinitialize_pessimistic();
  /// Promote the session back to optimistic once the partition healed.
  void promote_optimistic();

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] DcId dc() const { return dc_; }
  [[nodiscard]] bool pessimistic() const { return pessimistic_; }
  [[nodiscard]] const VersionVector& dv() const { return dv_; }
  [[nodiscard]] const VersionVector& rdv() const { return rdv_; }
  [[nodiscard]] std::uint32_t session_generation() const {
    return session_generation_;
  }

 private:
  void absorb_read_item(const proto::ReadItem& item);

  ClientId id_;
  DcId dc_;
  VersionVector dv_;   // DV_c: write dependencies
  VersionVector rdv_;  // RDV_c: dependencies of items read
  bool snapshot_rdv_ = false;
  bool pessimistic_ = false;
  std::uint32_t session_generation_ = 0;
};

}  // namespace pocc::client
