#include "pocc/pocc_server.hpp"

namespace pocc {

proto::ReadItem PoccServer::choose_get_version(const proto::GetReq& req) {
  proto::ReadItem item;
  item.key = req.key;
  const store::VersionChain* chain = store_.find(req.key);
  charge(service_.version_hop_us);  // head access only
  if (chain == nullptr || chain->empty()) {
    item.found = false;
    item.sr = 0;
    item.ut = 0;
    item.dv = VersionVector(topology_.num_dcs);
    return item;
  }
  const store::Version* v = chain->freshest();
  item.found = true;
  item.value = v->value;
  item.sr = v->sr;
  item.ut = v->ut;
  item.dv = v->dv;
  // POCC returns the freshest version by construction: a GET is never "old"
  // and the freshness metrics stay at zero (§V-B).
  item.fresher_versions = 0;
  item.unmerged_versions = 0;
  return item;
}

}  // namespace pocc
