// Umbrella header — the public API of the POCC library.
//
//   #include "pocc/api.hpp"
//
// Three ways to use the library, from highest to lowest level:
//
//  1. Deployments.
//     * pocc::cluster::SimCluster — a deterministic simulated geo-replicated
//       deployment (DES-backed); what the benchmarks and most tests use.
//     * pocc::rt::Cluster — the same protocol engines as a real,
//       multi-threaded in-process store with blocking sessions.
//
//  2. Protocol engines, for embedding in your own host: pocc::PoccServer,
//     pocc::CureServer, pocc::HaPoccServer, pocc::ScalarPoccServer and
//     pocc::client::ClientEngine. Implement pocc::server::Context (clock,
//     send, reply, timers) and feed messages to ReplicaBase::handle_message.
//
//  3. Building blocks: version vectors, the multi-version store, the
//     discrete-event simulator, workload generators, metrics and the
//     causal-consistency checker.
#pragma once

#include "client/client_engine.hpp"
#include "cluster/sim_cluster.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "cure/cure_server.hpp"
#include "ha/ha_pocc_server.hpp"
#include "pocc/pocc_server.hpp"
#include "pocc/scalar_pocc_server.hpp"
#include "store/key_space.hpp"
#include "runtime/rt_cluster.hpp"
#include "workload/workload.hpp"
