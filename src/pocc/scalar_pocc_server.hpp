// Scalar-clock OCC — an ablation of the dependency-tracking granularity.
//
// §III-A: "OCC can be implemented with any dependency tracking mechanism that
// has been proposed in literature, e.g., dependency lists, dependency
// matrices, physical scalar clocks and physical vector clocks." POCC picks
// vector clocks (one entry per DC). This engine implements the *scalar*
// endpoint of that spectrum (GentleRain-style): a client's read dependency
// collapses to a single timestamp — the maximum across DCs — and a server
// can only serve a read once EVERY remote entry of its version vector has
// passed that scalar.
//
// Same wire format (the vectors still travel; only their interpretation
// coarsens), so the comparison isolates granularity:
//   * coarser dependencies => more spurious stalls on reads/writes,
//   * transaction snapshots fall back to a GST-like scalar cut
//     (min across the VV), trading POCC's snapshot freshness away.
// bench/abl_metadata quantifies both effects.
#pragma once

#include "pocc/pocc_server.hpp"

namespace pocc {

class ScalarPoccServer : public PoccServer {
 public:
  using PoccServer::PoccServer;

 protected:
  /// Highest remote entry (dependencies toward the local DC are trivially
  /// satisfied, as in Alg. 2 line 2).
  [[nodiscard]] Timestamp scalar_dep(const VersionVector& v) const {
    Timestamp dep = 0;
    for (std::uint32_t i = 0; i < v.size(); ++i) {
      if (i == local_dc()) continue;
      dep = std::max(dep, v[i]);
    }
    return dep;
  }

  /// Lowest remote entry of the local VV — the scalar "everything up to here
  /// received from every DC" cut (GentleRain's GST analogue).
  [[nodiscard]] Timestamp scalar_cut() const {
    Timestamp cut = kTimestampMax;
    for (std::uint32_t i = 0; i < vv_.size(); ++i) {
      if (i == local_dc()) continue;
      cut = std::min(cut, vv_[i]);
    }
    return cut;
  }

  /// Scalar wait: every remote VV entry must pass the client's scalar
  /// dependency. Strictly stronger than POCC's entry-wise check, hence safe
  /// — and measurably more prone to (useless) stalls.
  [[nodiscard]] bool get_ready(const proto::GetReq& req) const override {
    return scalar_cut() >= scalar_dep(req.rdv);
  }

  /// Transaction snapshot: a uniform scalar cut, raised to cover the
  /// client's dependencies and kept fresh on the local entry.
  [[nodiscard]] VersionVector compute_tx_snapshot(
      const proto::RoTxReq& req) const override {
    const Timestamp s = std::max(scalar_cut(), req.rdv.max_entry());
    VersionVector tv(topology_.num_dcs);
    for (std::uint32_t i = 0; i < tv.size(); ++i) tv.set(i, s);
    tv.raise(local_dc(), vv_[local_dc()]);
    return tv;
  }

  /// GC floor matching the *scalar* snapshot geometry. The base (POCC)
  /// watermark is the per-entry VV, but scalar transaction snapshots are
  /// uniform cuts that can sit as low as the minimum remote VV entry: with
  /// the vector floor, GC could reclaim a version a future scalar snapshot
  /// still needs while the retained cover's dependencies exceed the uniform
  /// cut (invisible), leaving the snapshot read empty. Found by the
  /// cluster-fuzz harness when a crashed node froze one VV entry and widened
  /// the cut-vs-vector gap.
  [[nodiscard]] VersionVector gc_watermark() const override {
    VersionVector wm(topology_.num_dcs);
    const Timestamp cut = scalar_cut();
    for (std::uint32_t i = 0; i < wm.size(); ++i) wm.set(i, cut);
    wm.raise(local_dc(), vv_[local_dc()]);
    return wm;
  }
};

}  // namespace pocc
