// POCC server engine — the paper's primary contribution (§IV, Algorithm 2).
//
// Optimistic visibility: a GET always returns the freshest locally available
// version compatible with the client's history, even if that version is not
// yet *stable* in this data center. Consistency is enforced lazily: the
// server compares the client-supplied read-dependency vector RDV against its
// version vector VV and stalls the request on the rare occasions when a
// potential dependency has not been received yet. No stabilization protocol
// runs and GETs never search the version chain.
#pragma once

#include "server/replica_base.hpp"

namespace pocc {

class PoccServer : public server::ReplicaBase {
 public:
  using server::ReplicaBase::ReplicaBase;

 protected:
  /// Alg. 2 line 2: VV[i] >= RDV[i] for all i != m (local dependencies are
  /// trivially satisfied).
  [[nodiscard]] bool get_ready(const proto::GetReq& req) const override {
    return vv_.dominates(req.rdv, skip_local());
  }

  /// Alg. 2 line 3: the version with the highest update timestamp — always
  /// the chain head, independent of chain length (O(1), no stability search).
  proto::ReadItem choose_get_version(const proto::GetReq& req) override;

  /// Alg. 2 line 32: TV = max(VV, RDV), entry-wise. Snapshot boundaries are
  /// set by what this DC has *received*, not by what is stable.
  [[nodiscard]] VersionVector compute_tx_snapshot(
      const proto::RoTxReq& req) const override {
    return VersionVector::max_of(vv_, req.rdv);
  }

  /// Alg. 2 line 43: d is visible in the snapshot iff d.DV <= TV.
  [[nodiscard]] bool slice_visible(const store::Version& v,
                                   const VersionVector& tv,
                                   bool pessimistic) const override {
    (void)pessimistic;  // plain POCC has no pessimistic sessions
    return v.dv.leq(tv);
  }
};

}  // namespace pocc
