#include "pocc/scalar_pocc_server.hpp"

// All behaviour lives in the header; this translation unit anchors the vtable.
namespace pocc {}
