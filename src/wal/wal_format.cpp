#include "wal/wal_format.hpp"

#include <cstring>
#include <limits>
#include <string_view>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "store/key_space.hpp"

namespace pocc::wal {

namespace {

constexpr char kSnapshotMagic[8] = {'P', 'O', 'C', 'C', 'S', 'N', 'P', '1'};

// Minimal little-endian writer/reader. The proto codec's equivalents are
// file-local to codec.cpp on purpose (different framing, different charging
// rules); the WAL needs no byte accounting.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void put_vv(std::vector<std::uint8_t>& out, const VersionVector& vv) {
  put_u8(out, static_cast<std::uint8_t>(vv.size()));
  for (std::uint32_t i = 0; i < vv.size(); ++i) {
    put_le<std::uint64_t>(out, static_cast<std::uint64_t>(vv[i]));
  }
}

/// Version fields, shared between kVersion records and snapshot bodies. The
/// key travels as its original string: ids are per-process.
void put_version(std::vector<std::uint8_t>& out, const store::Version& v) {
  const std::string_view name = store::KeySpace::global().name(v.key);
  POCC_ASSERT_MSG(name.size() <= std::numeric_limits<std::uint16_t>::max(),
                  "key longer than the WAL format's 64 KiB limit");
  put_le<std::uint16_t>(out, static_cast<std::uint16_t>(name.size()));
  put_bytes(out, name.data(), name.size());
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(v.value.size()));
  put_bytes(out, v.value.data(), v.value.size());
  put_le<std::uint32_t>(out, v.sr);
  put_le<std::uint64_t>(out, static_cast<std::uint64_t>(v.ut));
  put_vv(out, v.dv);
  put_u8(out, v.opt_origin ? 1 : 0);
}

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

  std::uint8_t u8() { return get_le<std::uint8_t>(); }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }

  VersionVector vv() {
    const std::uint8_t n = u8();
    if (!ok_) return {};
    if (n == 0 || n > kMaxDcs) {  // engines never log empty vectors
      ok_ = false;
      return {};
    }
    VersionVector v(n);
    for (std::uint8_t i = 0; i < n && ok_; ++i) {
      v.set(i, static_cast<Timestamp>(u64()));
    }
    return v;
  }

  bool version(store::Version* out) {
    const std::uint16_t key_len = u16();
    if (!ok_ || remaining() < key_len) return fail();
    const auto* key_bytes = reinterpret_cast<const char*>(p_);
    p_ += key_len;
    const std::uint32_t value_len = u32();
    if (!ok_ || remaining() < value_len) return fail();
    const auto* value_bytes = reinterpret_cast<const char*>(p_);
    p_ += value_len;
    out->sr = u32();
    out->ut = static_cast<Timestamp>(u64());
    out->dv = vv();
    const std::uint8_t opt = u8();
    if (!ok_ || out->dv.size() == 0) return fail();
    out->key = store::KeySpace::global().intern(
        std::string_view(key_bytes, key_len));
    out->value.assign(value_bytes, value_len);
    out->opt_origin = opt != 0;
    return true;
  }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  template <typename T>
  T get_le() {
    if (remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<std::uint64_t>(p_[i]) << (8 * i)));
    }
    p_ += sizeof(T);
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

void frame_payload(std::vector<std::uint8_t>& out,
                   const std::vector<std::uint8_t>& payload) {
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put_le<std::uint32_t>(out, crc32(payload.data(), payload.size()));
  put_bytes(out, payload.data(), payload.size());
}

/// Decode one payload (kind + fields). False on any malformation.
bool decode_payload(const std::uint8_t* data, std::size_t len, Record* out) {
  Reader r(data, len);
  const std::uint8_t kind = r.u8();
  if (!r.ok()) return false;
  switch (static_cast<RecordKind>(kind)) {
    case RecordKind::kVersion:
      out->kind = RecordKind::kVersion;
      if (!r.version(&out->version)) return false;
      break;
    case RecordKind::kVv:
      out->kind = RecordKind::kVv;
      out->vv = r.vv();
      if (!r.ok() || out->vv.size() == 0) return false;
      break;
    default:
      return false;
  }
  return r.remaining() == 0;
}

}  // namespace

void append_version_record(std::vector<std::uint8_t>& out,
                           const store::Version& v) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64 + v.value.size());
  put_u8(payload, static_cast<std::uint8_t>(RecordKind::kVersion));
  put_version(payload, v);
  frame_payload(out, payload);
}

void append_vv_record(std::vector<std::uint8_t>& out,
                      const VersionVector& vv) {
  std::vector<std::uint8_t> payload;
  payload.reserve(2 + static_cast<std::size_t>(vv.size()) * 8);
  put_u8(payload, static_cast<std::uint8_t>(RecordKind::kVv));
  put_vv(payload, vv);
  frame_payload(out, payload);
}

ScanResult scan_records(const std::uint8_t* data, std::size_t len,
                        const std::function<void(const Record&)>& fn) {
  ScanResult res;
  std::size_t off = 0;
  while (off + 8 <= len) {
    std::uint32_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      payload_len |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
      stored_crc |= static_cast<std::uint32_t>(data[off + 4 + i]) << (8 * i);
    }
    if (payload_len == 0 || payload_len > len - off - 8) break;  // torn
    const std::uint8_t* payload = data + off + 8;
    if (crc32(payload, payload_len) != stored_crc) break;  // corrupted
    Record rec;
    if (!decode_payload(payload, payload_len, &rec)) break;
    fn(rec);
    ++res.records;
    off += 8 + payload_len;
    res.valid_bytes = off;
  }
  res.torn = res.valid_bytes != len;
  return res;
}

std::vector<std::uint8_t> encode_snapshot(const store::PartitionStore& store,
                                          const VersionVector& vv) {
  std::vector<std::uint8_t> body;
  put_vv(body, vv);
  std::uint64_t count = 0;
  for (const auto& [key, chain] : store.chains()) {
    (void)key;
    count += chain.versions().size();
  }
  put_le<std::uint64_t>(body, count);
  for (const auto& [key, chain] : store.chains()) {
    (void)key;
    for (const store::Version& v : chain.versions()) put_version(body, v);
  }

  std::vector<std::uint8_t> out;
  out.reserve(sizeof(kSnapshotMagic) + 8 + body.size());
  put_bytes(out, kSnapshotMagic, sizeof(kSnapshotMagic));
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
  put_le<std::uint32_t>(out, crc32(body.data(), body.size()));
  put_bytes(out, body.data(), body.size());
  return out;
}

std::optional<SnapshotData> decode_snapshot(const std::uint8_t* data,
                                            std::size_t len) {
  if (len < sizeof(kSnapshotMagic) + 8) return std::nullopt;
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t body_len = 0;
  std::uint32_t stored_crc = 0;
  const std::uint8_t* p = data + sizeof(kSnapshotMagic);
  for (std::size_t i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    stored_crc |= static_cast<std::uint32_t>(p[4 + i]) << (8 * i);
  }
  const std::uint8_t* body = p + 8;
  if (body_len != len - sizeof(kSnapshotMagic) - 8) return std::nullopt;
  if (crc32(body, body_len) != stored_crc) return std::nullopt;

  Reader r(body, body_len);
  SnapshotData snap;
  snap.vv = r.vv();
  if (!r.ok() || snap.vv.size() == 0) return std::nullopt;
  const std::uint64_t count = r.u64();
  if (!r.ok()) return std::nullopt;
  // Each version costs >= ~30 bytes; an implausible count is corruption, not
  // a reason to pre-allocate gigabytes (same defense as the proto codec).
  if (count > static_cast<std::uint64_t>(r.remaining()) / 30 + 1) {
    return std::nullopt;
  }
  snap.versions.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    store::Version v;
    if (!r.version(&v)) return std::nullopt;
    snap.versions.push_back(std::move(v));
  }
  if (r.remaining() != 0) return std::nullopt;
  return snap;
}

}  // namespace pocc::wal
