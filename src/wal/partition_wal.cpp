#include "wal/partition_wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "common/assert.hpp"
#include "wal/wal_format.hpp"

namespace pocc::wal {

namespace fs = std::filesystem;

namespace {

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string snapshot_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%08llu.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parse "<prefix>-<8 digits>.<ext>" → seq; nullopt for foreign files.
std::optional<std::uint64_t> parse_seq(const std::string& name,
                                       const char* prefix, const char* ext) {
  const std::size_t plen = std::strlen(prefix);
  if (name.size() != plen + 1 + 8 + std::strlen(ext) ||
      name.compare(0, plen, prefix) != 0 || name[plen] != '-' ||
      name.compare(plen + 9, std::string::npos, ext) != 0) {
    return std::nullopt;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = plen + 1; i < plen + 9; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

std::vector<std::uint64_t> list_seqs(const std::string& dir,
                                     const char* prefix, const char* ext) {
  std::vector<std::uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (const auto seq = parse_seq(entry.path().filename().string(), prefix,
                                   ext)) {
      seqs.push_back(*seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::vector<std::uint8_t> data;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return data;
  for (;;) {
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    data.insert(data.end(), chunk, chunk + n);
  }
  ::close(fd);
  return data;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory so renames/creates within it are durable.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

PartitionWal::PartitionWal(std::string dir, Options opt)
    : dir_(std::move(dir)), opt_(opt) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  POCC_ASSERT_MSG(!ec, "cannot create WAL directory");
  // Leftover in-flight snapshots are dead: the checkpoint they belonged to
  // never committed (rename is the commit point).
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }
  const auto segments = list_seqs(dir_, "wal", ".log");
  seq_ = segments.empty() ? 1 : segments.back();
  open_active_segment(/*truncate_torn=*/!segments.empty());
}

PartitionWal::~PartitionWal() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
  }
}

void PartitionWal::open_active_segment(bool truncate_torn) {
  const std::string path = dir_ + "/" + segment_name(seq_);
  if (truncate_torn) {
    // An interrupted group commit leaves a torn tail; cut back to the last
    // complete record so appends resume on a clean boundary.
    const auto data = read_file(path);
    const ScanResult scan =
        scan_records(data.data(), data.size(), [](const Record&) {});
    replay_torn_bytes_ = data.size() - scan.valid_bytes;
    if (scan.torn) {
      const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd >= 0) {
        POCC_ASSERT(::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) ==
                    0);
        ::fsync(fd);
        ::close(fd);
      }
    }
    active_segment_bytes_ = scan.valid_bytes;
  } else {
    active_segment_bytes_ = 0;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  POCC_ASSERT_MSG(fd_ >= 0, "cannot open WAL segment for append");
  if (!truncate_torn) sync_dir(dir_);
}

void PartitionWal::log_version(const store::Version& v) {
  append_version_record(buf_, v);
}

void PartitionWal::log_vv(const VersionVector& vv) {
  append_vv_record(buf_, vv);
}

void PartitionWal::sync() {
  if (buf_.empty()) return;
  POCC_ASSERT_MSG(write_all(fd_, buf_.data(), buf_.size()),
                  "WAL append failed");
  POCC_ASSERT_MSG(::fdatasync(fd_) == 0, "WAL fdatasync failed");
  active_segment_bytes_ += buf_.size();
  synced_bytes_ += buf_.size();
  ++syncs_;
  buf_.clear();
}

PartitionWal::ReplayStats PartitionWal::replay(
    const std::function<void(const store::Version&)>& on_version,
    const std::function<void(const VersionVector&)>& on_vv) {
  ReplayStats stats;
  stats.torn_bytes = replay_torn_bytes_;

  // Newest valid snapshot wins; a corrupt file falls back to the previous
  // one (pruning keeps the older snapshot's segment suffix on disk until a
  // newer snapshot commits).
  std::uint64_t replay_from = 0;
  auto snaps = list_seqs(dir_, "snap", ".snap");
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    const auto data = read_file(dir_ + "/" + snapshot_name(*it));
    const auto snap = decode_snapshot(data.data(), data.size());
    if (!snap.has_value()) continue;
    for (const store::Version& v : snap->versions) on_version(v);
    on_vv(snap->vv);
    stats.snapshot_loaded = true;
    stats.snapshot_versions = snap->versions.size();
    replay_from = *it;
    break;
  }

  for (const std::uint64_t seq : list_seqs(dir_, "wal", ".log")) {
    if (seq < replay_from) continue;
    const auto data = read_file(dir_ + "/" + segment_name(seq));
    const ScanResult scan =
        scan_records(data.data(), data.size(), [&](const Record& rec) {
          if (rec.kind == RecordKind::kVersion) {
            on_version(rec.version);
            ++stats.log_versions;
          } else {
            on_vv(rec.vv);
            ++stats.vv_records;
          }
        });
    ++stats.segments_replayed;
    // A torn record mid-chain (not the newest segment, whose tail was
    // already truncated at open) means later segments post-date lost data;
    // stop rather than replay past a hole.
    if (scan.torn && seq != seq_) break;
  }
  return stats;
}

std::uint64_t PartitionWal::begin_checkpoint() {
  sync();
  ::close(fd_);
  ++seq_;
  checkpoint_pending_ = true;
  open_active_segment(/*truncate_torn=*/false);
  return seq_;
}

bool PartitionWal::commit_checkpoint(std::uint64_t seq,
                                     const std::vector<std::uint8_t>& body) {
  const std::string tmp = dir_ + "/" + snapshot_name(seq) + ".tmp";
  const std::string final_path = dir_ + "/" + snapshot_name(seq);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  bool ok = fd >= 0 && write_all(fd, body.data(), body.size()) &&
            ::fsync(fd) == 0;
  if (fd >= 0) ::close(fd);
  ok = ok && ::rename(tmp.c_str(), final_path.c_str()) == 0;
  checkpoint_pending_ = false;
  if (!ok) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  sync_dir(dir_);

  // Prune: keep this snapshot and the previous one (bit-rot fallback), plus
  // every segment the *older kept* snapshot still needs.
  auto snaps = list_seqs(dir_, "snap", ".snap");
  std::uint64_t keep_floor = seq;
  if (snaps.size() >= 2) keep_floor = snaps[snaps.size() - 2];
  std::error_code ec;
  for (const std::uint64_t s : snaps) {
    if (s < keep_floor) fs::remove(dir_ + "/" + snapshot_name(s), ec);
  }
  for (const std::uint64_t s : list_seqs(dir_, "wal", ".log")) {
    if (s < keep_floor) fs::remove(dir_ + "/" + segment_name(s), ec);
  }
  sync_dir(dir_);
  return true;
}

}  // namespace pocc::wal
