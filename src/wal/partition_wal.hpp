// One partition's durable state on disk: a directory of append-only WAL
// segments plus point-in-time snapshots, with group-commit fsync.
//
//   <dir>/wal-<seq>.log    append-only record segments (wal_format.hpp)
//   <dir>/snap-<seq>.snap  snapshot covering every segment with seq' < seq
//   <dir>/snap-<seq>.tmp   in-flight snapshot (ignored by recovery)
//
// Write path (engine owner thread): log_version/log_vv append framed records
// to a userland buffer — *nothing* is externally visible yet; the runtime
// host withholds replies and sends produced while unsynced_bytes() > 0, then
// calls sync() once per drained message batch (group commit: one
// write+fdatasync covers the whole batch). A crash loses at most the
// unsynced suffix, and nothing externally visible depended on it.
//
// Checkpoint path: when the active segment outgrows the threshold the owner
// thread serializes a consistent cut (begin_checkpoint rotates to a fresh
// segment and names the cut), and a background thread makes it durable
// (commit_checkpoint: tmp + fsync + rename + directory fsync) and prunes
// segments/snapshots the new snapshot obsoletes. The previous snapshot and
// its segment suffix are retained until a *newer* snapshot commits, so a
// corrupt snapshot file always leaves a valid older recovery line.
//
// Recovery (replay): newest valid snapshot, then every segment >= its seq in
// order; the newest segment's torn tail — an interrupted group commit — is
// truncated to the last complete record at open time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "server/durability.hpp"
#include "stats/relaxed_counter.hpp"
#include "store/version.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::wal {

class PartitionWal final : public server::DurabilityLog {
 public:
  struct Options {
    /// Active-segment size that triggers a checkpoint (0 = never).
    std::uint64_t checkpoint_bytes = 4u << 20;
  };

  struct ReplayStats {
    bool snapshot_loaded = false;
    std::uint64_t snapshot_versions = 0;
    std::uint64_t log_versions = 0;
    std::uint64_t vv_records = 0;
    std::uint64_t segments_replayed = 0;
    std::uint64_t torn_bytes = 0;  // truncated off the newest segment
  };

  /// Opens (creating if needed) the partition directory, truncates the
  /// newest segment's torn tail, and opens it for appending.
  PartitionWal(std::string dir, Options opt);
  explicit PartitionWal(std::string dir)
      : PartitionWal(std::move(dir), Options()) {}
  ~PartitionWal() override;

  PartitionWal(const PartitionWal&) = delete;
  PartitionWal& operator=(const PartitionWal&) = delete;

  // --- server::DurabilityLog (owner thread) ---
  void log_version(const store::Version& v) override;
  void log_vv(const VersionVector& vv) override;

  /// Bytes appended but not yet covered by a sync() — the output-commit gate.
  [[nodiscard]] std::size_t unsynced_bytes() const { return buf_.size(); }

  /// Group commit: write the buffered records and fdatasync the segment.
  void sync();

  /// Drop appended-but-unsynced records without writing them — what a
  /// kill -9 does to the userland buffer (TcpNodeHost::crash_stop).
  void discard_unsynced() { buf_.clear(); }

  /// Replay the durable image (snapshot + segments) through the callbacks.
  /// Call before the first append of this process's lifetime.
  ReplayStats replay(const std::function<void(const store::Version&)>& on_version,
                     const std::function<void(const VersionVector&)>& on_vv);

  /// True when the active segment crossed the checkpoint threshold.
  [[nodiscard]] bool wants_checkpoint() const {
    return opt_.checkpoint_bytes > 0 && !checkpoint_pending_ &&
           active_segment_bytes_ >= opt_.checkpoint_bytes;
  }

  /// Owner thread, step 1: sync the tail, rotate to a fresh segment and
  /// return the sequence number the snapshot will cover (recovery replays
  /// segments >= it). The caller serializes the snapshot body *at this
  /// moment* — the cut is exactly "everything in segments < seq".
  std::uint64_t begin_checkpoint();

  /// Any thread, step 2: durably write `body` as snap-<seq> and prune what
  /// it obsoletes. Returns false on I/O failure (the old recovery line is
  /// left intact). Clears the pending flag armed by begin_checkpoint().
  bool commit_checkpoint(std::uint64_t seq,
                         const std::vector<std::uint8_t>& body);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t active_segment_seq() const { return seq_; }
  [[nodiscard]] std::uint64_t active_segment_bytes() const {
    return active_segment_bytes_;
  }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }
  [[nodiscard]] std::uint64_t synced_bytes() const { return synced_bytes_; }

 private:
  void open_active_segment(bool truncate_torn);

  std::string dir_;
  Options opt_;
  int fd_ = -1;
  std::uint64_t seq_ = 1;  // active segment sequence number
  std::uint64_t active_segment_bytes_ = 0;
  std::vector<std::uint8_t> buf_;  // appended, not yet written+synced
  bool checkpoint_pending_ = false;
  // Relaxed so a live /metrics scrape may read them off the owner thread.
  stats::RelaxedU64 syncs_;
  stats::RelaxedU64 synced_bytes_;
  std::uint64_t replay_torn_bytes_ = 0;
};

}  // namespace pocc::wal
