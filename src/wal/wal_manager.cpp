#include "wal/wal_manager.hpp"

#include <cstdio>
#include <utility>

#include "common/assert.hpp"

namespace pocc::wal {

WalManager::WalManager(std::string data_dir, PartitionWal::Options opt)
    : data_dir_(std::move(data_dir)), opt_(opt) {
  POCC_ASSERT_MSG(!data_dir_.empty(), "WalManager needs a data directory");
  flusher_ = std::thread([this] { run_flusher(); });
}

WalManager::~WalManager() { stop(); }

PartitionWal& WalManager::wal_for(PartitionId part) {
  auto it = wals_.find(part);
  if (it == wals_.end()) {
    char sub[16];
    std::snprintf(sub, sizeof(sub), "/p%u", part);
    it = wals_
             .emplace(part,
                      std::make_unique<PartitionWal>(data_dir_ + sub, opt_))
             .first;
  }
  return *it->second;
}

void WalManager::submit_checkpoint(PartitionWal* wal, std::uint64_t seq,
                                   std::vector<std::uint8_t> body) {
  {
    std::lock_guard lk(mu_);
    if (stopping_) return;
    queue_.push_back(Pending{wal, seq, std::move(body)});
  }
  cv_.notify_one();
}

void WalManager::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
}

void WalManager::run_flusher() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    // Drain even when stopping: a begin_checkpoint already rotated the log,
    // and dropping the commit would orphan the rotation until the next one.
    if (queue_.empty()) break;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    if (p.wal->commit_checkpoint(p.seq, p.body)) {
      ++checkpoints_committed_;
    } else {
      ++checkpoints_failed_;
    }
    lk.lock();
  }
}

}  // namespace pocc::wal
