// In-memory DurabilityLog for the discrete-event simulator's kWal fault
// mode: records exactly what a PartitionWal would make durable, without any
// filesystem I/O (the sim must stay deterministic and hermetic). "Sync" is
// implicit per append — the sim models the WAL as lossless, so a crashed
// node's restart replays the full logged history, exercising the same
// restore_version/restore_vv rebuild path the real recovery uses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "server/durability.hpp"
#include "store/version.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::wal {

class MemoryLog final : public server::DurabilityLog {
 public:
  void log_version(const store::Version& v) override {
    entries_.push_back(Entry{true, v, {}});
  }
  void log_vv(const VersionVector& vv) override {
    entries_.push_back(Entry{false, {}, vv});
  }

  /// Replay the full logged history in order (sim restart path).
  void replay(const std::function<void(const store::Version&)>& on_version,
              const std::function<void(const VersionVector&)>& on_vv) const {
    for (const Entry& e : entries_) {
      if (e.is_version) {
        on_version(e.version);
      } else {
        on_vv(e.vv);
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    bool is_version = false;
    store::Version version;
    VersionVector vv;
  };
  std::vector<Entry> entries_;
};

}  // namespace pocc::wal
