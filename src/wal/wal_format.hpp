// On-disk encoding of the per-partition write-ahead log and snapshots.
//
// WAL record framing (little-endian, mirroring the proto codec's layout
// discipline — length-prefixed, checksummed, defensively decoded):
//
//   u32  payload length
//   u32  CRC-32 of the payload (common/crc32.hpp)
//   ...  payload: u8 record kind, then the kind's fields
//
// Kinds:
//   kVersion — one store::Version: the key as its *original string* (KeyIds
//              are per-process; a restarted process re-interns), value, sr,
//              ut, dependency vector, opt_origin flag. Replay re-inserts the
//              version and raises VV[sr] to ut.
//   kVv      — a full version vector (heartbeat-driven raises that no
//              version record implies). Replay merge-maxes.
//
// Snapshot file layout:
//
//   8 bytes  magic "POCCSNP1"
//   u32      body length
//   u32      CRC-32 of the body
//   body     vv, u64 version count, then each version (same field encoding
//            as a kVersion payload, sans the kind byte)
//
// Scanning is prefix-exact: a torn or corrupted record ends the scan at the
// last fully valid record boundary — never a crash, never garbage handed to
// the caller (fuzzed by tests/wal_fuzz_test.cpp at every byte offset).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "store/partition_store.hpp"
#include "store/version.hpp"
#include "vclock/version_vector.hpp"

namespace pocc::wal {

enum class RecordKind : std::uint8_t {
  kVersion = 1,
  kVv = 2,
};

/// One decoded WAL record. `version` is meaningful for kVersion, `vv` for
/// kVv.
struct Record {
  RecordKind kind = RecordKind::kVersion;
  store::Version version;
  VersionVector vv;
};

/// Append one framed kVersion record to `out`.
void append_version_record(std::vector<std::uint8_t>& out,
                           const store::Version& v);

/// Append one framed kVv record to `out`.
void append_vv_record(std::vector<std::uint8_t>& out, const VersionVector& vv);

struct ScanResult {
  std::uint64_t records = 0;    // valid records delivered to the callback
  std::size_t valid_bytes = 0;  // prefix length covered by those records
  bool torn = false;            // trailing bytes were not a valid record
};

/// Decode framed records from the front of [data, data+len) in order,
/// invoking `fn` for each valid one. Stops at the first record whose length
/// frame, CRC or payload does not check out; `valid_bytes` is the safe
/// truncation point.
ScanResult scan_records(const std::uint8_t* data, std::size_t len,
                        const std::function<void(const Record&)>& fn);

/// Serialize a consistent cut of one partition: the engine's VV plus every
/// version chain. Must run on the store's owner thread (reads chains()).
std::vector<std::uint8_t> encode_snapshot(const store::PartitionStore& store,
                                          const VersionVector& vv);

struct SnapshotData {
  VersionVector vv;
  std::vector<store::Version> versions;
};

/// Validate + decode a snapshot file image. nullopt on any mismatch (bad
/// magic, length, CRC, or payload) — the caller falls back to an older
/// snapshot or a full log replay.
std::optional<SnapshotData> decode_snapshot(const std::uint8_t* data,
                                            std::size_t len);

}  // namespace pocc::wal
