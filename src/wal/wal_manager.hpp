// Process-level durability root: one PartitionWal per hosted partition under
// `<data_dir>/p<part>/`, plus the background checkpoint flusher.
//
// Division of labor with the runtime: the engine's worker thread owns the hot
// path (append, group-commit sync, snapshot serialization — all thread-affine
// with the engine), while the flusher thread here does the slow, contention-
// free part of a checkpoint: writing the snapshot body to disk, fsyncing,
// renaming and pruning (PartitionWal::commit_checkpoint, which is safe off
// the owner thread by design).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "wal/partition_wal.hpp"

namespace pocc::wal {

class WalManager {
 public:
  /// `data_dir` is the process's durable root (poccd --data-dir).
  explicit WalManager(std::string data_dir,
                      PartitionWal::Options opt = PartitionWal::Options());
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// The WAL for one partition, created (and its torn tail healed) on first
  /// use. Setup-phase only: callers must not race this with each other.
  PartitionWal& wal_for(PartitionId part);

  /// Queue a serialized snapshot for durable commit on the flusher thread
  /// (step 2 of PartitionWal's checkpoint protocol).
  void submit_checkpoint(PartitionWal* wal, std::uint64_t seq,
                         std::vector<std::uint8_t> body);

  /// Drain the checkpoint queue and join the flusher. Idempotent.
  void stop();

  [[nodiscard]] const std::string& data_dir() const { return data_dir_; }
  [[nodiscard]] std::uint64_t checkpoints_committed() const {
    return checkpoints_committed_;
  }
  [[nodiscard]] std::uint64_t checkpoints_failed() const {
    return checkpoints_failed_;
  }

 private:
  struct Pending {
    PartitionWal* wal = nullptr;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> body;
  };

  void run_flusher();

  std::string data_dir_;
  PartitionWal::Options opt_;
  std::unordered_map<PartitionId, std::unique_ptr<PartitionWal>> wals_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::thread flusher_;
  std::uint64_t checkpoints_committed_ = 0;  // flusher thread, read post-stop
  std::uint64_t checkpoints_failed_ = 0;
};

}  // namespace pocc::wal
