// poccd — one POCC/Cure*/HA-POCC node as a standalone networked server
// process. A real deployment runs M x N of these (one per (dc, partition)),
// all reading the same cluster config file:
//
//   poccd --config cluster.cfg --dc 0 --part 1 [--system pocc|cure|ha]
//         [--seed N] [--verbose]
//
// The process serves until SIGINT/SIGTERM, then prints an exit stats line.
// Engine clocks are aligned to CLOCK_REALTIME at startup so that update
// timestamps agree across processes to NTP precision — the paper's loose
// synchronization assumption (§IV); correctness never depends on it.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "net/tcp_node_host.hpp"
#include "runtime/rt_node.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int /*sig*/) { g_stop = 1; }

pocc::Timestamp realtime_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<pocc::Timestamp>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE --dc N --part N\n"
               "          [--system pocc|cure|ha] [--seed N] [--verbose]\n",
               argv0);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pocc;

  const char* config_path = nullptr;
  long dc = -1;
  long part = -1;
  const char* system_override = nullptr;
  std::uint64_t seed = 1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg_with_value = [&](const char* name, const char** out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(3);
      }
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (arg_with_value("--config", &config_path)) {
    } else if (arg_with_value("--dc", &value)) {
      dc = std::strtol(value, nullptr, 10);
    } else if (arg_with_value("--part", &value)) {
      part = std::strtol(value, nullptr, 10);
    } else if (arg_with_value("--system", &system_override)) {
    } else if (arg_with_value("--seed", &value)) {
      seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path == nullptr || dc < 0 || part < 0) return usage(argv[0]);

  std::string error;
  auto layout = net::load_cluster_config(config_path, &error);
  if (!layout.has_value()) {
    std::fprintf(stderr, "poccd: bad config: %s\n", error.c_str());
    return 3;
  }
  if (system_override != nullptr) {
    const auto system = net::parse_system(system_override);
    if (!system.has_value()) {
      std::fprintf(stderr, "poccd: unknown system '%s'\n", system_override);
      return 3;
    }
    layout->system = *system;
  }

  const NodeId self{static_cast<DcId>(dc), static_cast<PartitionId>(part)};
  const net::NodeAddress* addr = layout->find(self);
  if (addr == nullptr) {
    std::fprintf(stderr, "poccd: node %s not in the config\n",
                 self.to_string().c_str());
    return 3;
  }

  net::TcpNodeHost::Options opt;
  opt.listen_port = addr->port;
  opt.seed = seed;
  opt.verbose = verbose;
  // Map the engine clock onto wall time: steady_now_us() is process-relative,
  // so without this bias every process would carry a clock skew equal to its
  // start-time stagger, stalling PUT clock waits (Alg. 2 line 7) for exactly
  // that long.
  opt.clock = ClockConfig::perfect();
  opt.clock.offset_bias_us = realtime_us() - rt::steady_now_us();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  net::TcpNodeHost host(self, *layout, opt);
  host.start();
  std::fprintf(stderr, "poccd %s: %s engine on port %u\n",
               self.to_string().c_str(), net::system_name(layout->system),
               host.port());

  while (g_stop == 0) {
    timespec nap{0, 50'000'000};  // 50 ms
    nanosleep(&nap, nullptr);
  }

  host.stop();
  const auto& engine = host.engine();
  const auto stats = host.transport_stats();
  std::fprintf(stderr,
               "poccd %s: exiting — gets=%llu puts=%llu slices=%llu "
               "frames_in=%llu frames_out=%llu bytes_in=%llu bytes_out=%llu "
               "reconnects=%llu decode_errors=%llu dropped=%llu\n",
               self.to_string().c_str(),
               static_cast<unsigned long long>(engine.gets_served()),
               static_cast<unsigned long long>(engine.puts_served()),
               static_cast<unsigned long long>(engine.slices_served()),
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.frames_out),
               static_cast<unsigned long long>(stats.bytes_in),
               static_cast<unsigned long long>(stats.bytes_out),
               static_cast<unsigned long long>(stats.reconnects),
               static_cast<unsigned long long>(stats.decode_errors),
               static_cast<unsigned long long>(host.dropped_frames()));
  return 0;
}
