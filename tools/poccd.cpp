// poccd — the partitions of one data center as a standalone networked
// server process, pinned onto a pool of worker threads. A real deployment
// runs one of these per DC (the config's group `node` lines), all reading
// the same cluster config file:
//
//   poccd --config cluster.cfg --dc 0 [--part N] [--threads N]
//         [--system pocc|cure|ha] [--seed N] [--verbose]
//         [--data-dir DIR] [--no-durability] [--max-inbox N]
//         [--metrics-addr HOST:PORT] [--event-backend epoll|poll|uring]
//
// --part selects a process in legacy one-partition-per-process configs (one
// `node DC PART HOST:PORT` line each); group configs need only --dc.
// --threads overrides the config's worker count for this process.
// --data-dir enables the per-partition WAL + checkpoints under DIR (the
// process recovers from it after a crash — kill -9 included — rebuilding the
// lost replication suffix from peer DCs before admitting clients);
// --no-durability makes the omission of --data-dir explicit in scripts.
//
// The process serves until SIGINT/SIGTERM, then prints an exit stats line
// aggregated over every hosted partition engine. Engine clocks are aligned
// to CLOCK_REALTIME at startup so that update timestamps agree across
// processes to NTP precision — the paper's loose synchronization assumption
// (§IV); correctness never depends on it.
// --max-inbox bounds each worker's admission queue: past it, client requests
// are refused with Overloaded replies instead of queueing without bound
// (0 = unbounded, the default).
// --metrics-addr serves /metrics (Prometheus text format), /healthz and
// /readyz on an embedded HTTP endpoint; the SIGUSR2 live dump and the exit
// stats line render the SAME stats registry, so the three surfaces can never
// disagree about what the process counted.
#include <pthread.h>
#include <signal.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <system_error>

#include "net/tcp_node_host.hpp"
#include "runtime/rt_node.hpp"
#include "stats/registry.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_stats = 0;

void handle_signal(int /*sig*/) { g_stop = 1; }

void handle_dump(int /*sig*/) { g_dump_stats = 1; }

pocc::Timestamp realtime_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<pocc::Timestamp>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE --dc N [--part N] [--threads N]\n"
               "          [--system pocc|cure|ha] [--seed N] [--verbose]\n"
               "          [--data-dir DIR] [--no-durability] [--max-inbox N]\n"
               "          [--metrics-addr HOST:PORT]\n"
               "          [--event-backend epoll|poll|uring]\n",
               argv0);
  return 3;
}

/// Fail fast on an unusable --data-dir: create it if missing, then prove it
/// is writable with a probe file. Catching this before the host constructs
/// beats an assert deep inside the WAL manager mid-recovery.
bool data_dir_writable(const char* dir, std::string* why) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *why = "cannot create directory: " + ec.message();
    return false;
  }
  const fs::path probe = fs::path(dir) / ".poccd_write_probe";
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (f == nullptr) {
    *why = "directory is not writable: " + std::string(std::strerror(errno));
    return false;
  }
  std::fclose(f);
  fs::remove(probe, ec);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pocc;

  const char* config_path = nullptr;
  long dc = -1;
  long part = -1;
  long threads_override = -1;
  const char* system_override = nullptr;
  const char* data_dir = nullptr;
  const char* metrics_addr = nullptr;
  const char* event_backend = nullptr;
  bool no_durability = false;
  std::uint64_t seed = 1;
  long max_inbox = 0;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg_with_value = [&](const char* name, const char** out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(3);
      }
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (arg_with_value("--config", &config_path)) {
    } else if (arg_with_value("--dc", &value)) {
      dc = std::strtol(value, nullptr, 10);
    } else if (arg_with_value("--part", &value)) {
      part = std::strtol(value, nullptr, 10);
    } else if (arg_with_value("--threads", &value)) {
      threads_override = std::strtol(value, nullptr, 10);
    } else if (arg_with_value("--system", &system_override)) {
    } else if (arg_with_value("--seed", &value)) {
      seed = std::strtoull(value, nullptr, 10);
    } else if (arg_with_value("--data-dir", &data_dir)) {
    } else if (arg_with_value("--metrics-addr", &metrics_addr)) {
    } else if (arg_with_value("--event-backend", &event_backend)) {
    } else if (arg_with_value("--max-inbox", &value)) {
      max_inbox = std::strtol(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-durability") == 0) {
      no_durability = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path == nullptr || dc < 0) return usage(argv[0]);

  std::string error;
  auto layout = net::load_cluster_config(config_path, &error);
  if (!layout.has_value()) {
    std::fprintf(stderr, "poccd: bad config: %s\n", error.c_str());
    return 3;
  }
  if (system_override != nullptr) {
    const auto system = net::parse_system(system_override);
    if (!system.has_value()) {
      std::fprintf(stderr, "poccd: unknown system '%s'\n", system_override);
      return 3;
    }
    layout->system = *system;
  }

  // Pick the ProcessSpec this invocation serves: by --dc alone for group
  // configs (one process per DC), disambiguated by --part for legacy
  // one-partition-per-process configs.
  const net::ProcessSpec* self = nullptr;
  int matches = 0;
  for (const net::ProcessSpec& p : layout->processes) {
    if (p.dc != static_cast<DcId>(dc)) continue;
    if (part >= 0 && !p.hosts(NodeId{static_cast<DcId>(dc),
                                     static_cast<PartitionId>(part)})) {
      continue;
    }
    self = &p;
    ++matches;
  }
  if (self == nullptr) {
    const std::string suffix =
        part >= 0 ? " part " + std::to_string(part) : std::string();
    std::fprintf(stderr, "poccd: no process for dc %ld%s in the config\n", dc,
                 suffix.c_str());
    return 3;
  }
  if (matches > 1) {
    std::fprintf(stderr,
                 "poccd: %d processes host dc %ld — pass --part to pick one\n",
                 matches, dc);
    return 3;
  }

  net::ProcessSpec spec = *self;
  if (threads_override > 0) {
    spec.threads = static_cast<std::uint32_t>(threads_override);
  }

  if (data_dir != nullptr && no_durability) {
    std::fprintf(stderr,
                 "poccd: --data-dir and --no-durability are exclusive\n");
    return 3;
  }

  net::TcpNodeHost::Options opt;
  opt.listen_port = spec.port;
  opt.seed = seed;
  opt.verbose = verbose;
  if (max_inbox > 0) opt.max_inbox_messages = static_cast<std::size_t>(max_inbox);
  if (data_dir != nullptr) {
    std::string why;
    if (!data_dir_writable(data_dir, &why)) {
      std::fprintf(stderr, "poccd: --data-dir %s unusable — %s\n", data_dir,
                   why.c_str());
      return 3;
    }
    opt.data_dir = data_dir;
  }
  if (metrics_addr != nullptr) opt.metrics_addr = metrics_addr;
  if (event_backend != nullptr) {
    net::EventLoop::Backend backend;
    if (!net::EventLoop::parse_backend(event_backend, &backend)) {
      std::fprintf(stderr, "poccd: unknown --event-backend '%s'\n",
                   event_backend);
      return 3;
    }
    // The process default too: any auxiliary transport (tests, tools built
    // on this main) follows the flag, exactly like POCC_EVENT_BACKEND.
    net::EventLoop::set_default_backend(backend);
    opt.backend = backend;
  }
  // Map the engine clock onto wall time: steady_now_us() is process-relative,
  // so without this bias every process would carry a clock skew equal to its
  // start-time stagger, stalling PUT clock waits (Alg. 2 line 7) for exactly
  // that long.
  opt.clock = ClockConfig::perfect();
  opt.clock.offset_bias_us = realtime_us() - rt::steady_now_us();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);
  // SIGUSR1 is the chaos harness's interrupt pepper: a no-op handler
  // installed WITHOUT SA_RESTART, so delivery makes blocking syscalls in
  // the loop threads actually return EINTR. The process must shrug it off —
  // the e2e signal leg diffs the SIGUSR2 stats lines across the storm and
  // fails on any new reconnects.
  {
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR1, &sa, nullptr);
  }
  // SIGUSR2 dumps a live transport stats line. Scripts bracket a chaos
  // window with two dumps and compare — the exit line alone can't separate
  // storm-induced reconnects from benign startup dial races (a peer that
  // wasn't listening yet also bumps the reconnect counter).
  std::signal(SIGUSR2, handle_dump);

  net::TcpNodeHost host(spec, *layout, opt);
  host.start();
  // Now that the loop threads exist (they inherited an unblocked mask),
  // mask SIGUSR1 in the main thread: a process-directed pepper from the
  // chaos harness would otherwise land on this thread's nanosleep and never
  // actually interrupt an event loop.
  {
    sigset_t pepper;
    sigemptyset(&pepper);
    sigaddset(&pepper, SIGUSR1);
    pthread_sigmask(SIG_BLOCK, &pepper, nullptr);
  }
  std::fprintf(stderr,
               "poccd dc%ld: %s engine, %zu partitions on %u workers, "
               "port %u, %s event backend\n",
               dc, net::system_name(layout->system), spec.parts.size(),
               host.group().threads(), host.port(),
               net::EventLoop::backend_name(opt.backend));
  if (data_dir != nullptr) {
    // One line per partition so crash drills can assert the WAL replay
    // actually ran (scripts grep for "recovered part").
    const auto& replays = host.replay_stats();
    for (std::size_t i = 0; i < spec.parts.size(); ++i) {
      const wal::PartitionWal::ReplayStats& rs = replays[i];
      std::fprintf(stderr,
                   "poccd dc%ld: recovered part %u — snapshot_versions=%llu "
                   "log_versions=%llu vv_records=%llu torn_bytes=%llu\n",
                   dc, spec.parts[i],
                   static_cast<unsigned long long>(rs.snapshot_versions),
                   static_cast<unsigned long long>(rs.log_versions),
                   static_cast<unsigned long long>(rs.vv_records),
                   static_cast<unsigned long long>(rs.torn_bytes));
    }
  }

  while (g_stop == 0) {
    timespec nap{0, 50'000'000};  // 50 ms
    nanosleep(&nap, nullptr);
    if (g_dump_stats != 0) {
      g_dump_stats = 0;
      // Live dump = human render of the same registry snapshot /metrics
      // serves (scripts sed out e.g. "transport_reconnects=N" from it).
      const std::string line =
          stats::render_human(host.registry().snapshot());
      std::fprintf(stderr, "poccd dc%ld: stats — %s\n", dc, line.c_str());
    }
  }

  host.stop();
  // Exit stats = the same registry snapshot /metrics and SIGUSR2 render,
  // taken after the final drain so the counts are complete. The host (and
  // everything the scrape callbacks read) outlives stop().
  const std::string exit_line =
      stats::render_human(host.registry().snapshot());
  std::fprintf(stderr, "poccd dc%ld: exiting — %s\n", dc, exit_line.c_str());
  return 0;
}
