// pocc_chaosproxy — a frame-aware TCP proxy that degrades the links of a
// real multi-process poccd cluster with the same seed-deterministic chaos
// model the in-process campaign uses (net/chaos.hpp): per-link propagation
// delay and jitter, segment loss modeled as RTO stalls, reorder
// head-of-line blocking, a bandwidth token bucket, duplicate frames,
// mid-stream connection resets, and timed partition windows driven by a
// fault::FaultPlan schedule.
//
//   pocc_chaosproxy --seed N --route LPORT:HOST:TPORT:SRCDC:DSTDC [...]
//                   [--dcs N] [--parts N] [--horizon-s S] [--duration-s S]
//                   [--delay-us N] [--jitter-us N] [--loss P] [--bw BYTES/S]
//                   [--reorder-us N] [--dup P] [--reset P] [--verbose]
//
// Each --route opens one listening port; every connection accepted there is
// proxied to HOST:TPORT with chaos applied INDEPENDENTLY per direction
// (SRCDC->DSTDC on client-to-target bytes, the reverse on replies), so an
// asymmetric partition blocks one direction and leaves the other flowing.
// Point the cluster config's peer addresses at the proxy's listen ports and
// the deployment runs under chaos without a line of server change.
//
// Frames (4-byte little-endian length prefix + body, proto/codec.hpp) are
// cut out of the byte stream and re-emitted whole after their chaos delay —
// the proxy never splits a frame, so the peer's framing survives everything
// except the deliberate resets. The plan hash is printed at startup;
// re-running with the same --seed replays the identical schedule.
//
// Losslessness: a partition window STALLS established streams (frames keep
// buffering, release waits for the window to close — bounded by the plan's
// window cap) and refuses NEW connections; it never cuts live ones. Cutting
// would drop bytes the proxy already TCP-acked to the sender — a silent
// hole in a stream between two live processes, which no crash-recovery
// handshake repairs and the protocol's lossless FIFO assumption (§II-C)
// cannot survive. For the same reason --reset (like --dup) is only safe on
// CLIENT-facing routes, where the client's idempotent deadline/retry layer
// absorbs the loss; leave both at 0 on server-to-server routes.
//
// Exit: runs until SIGINT/SIGTERM. Usage errors exit 4.
#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "net/chaos.hpp"

namespace {

using namespace pocc;

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int /*sig*/) { g_stop = 1; }

Timestamp now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --seed N --route LPORT:HOST:TPORT:SRCDC:DSTDC [--route ...]\n"
      "          [--dcs N] [--parts N] [--horizon-s S] [--duration-s S]\n"
      "          [--delay-us N] [--jitter-us N] [--loss P] [--bw BYTES_PER_S]\n"
      "          [--reorder-us N] [--dup P] [--reset P] [--verbose]\n",
      argv0);
  return 4;
}

struct Route {
  std::uint16_t listen_port = 0;
  std::string target_host;
  std::uint16_t target_port = 0;
  DcId src_dc = 0;
  DcId dst_dc = 0;
  int listen_fd = -1;
};

bool set_nonblock(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One direction of a proxied connection: stream bytes in, whole frames out
/// after their chaos verdicts.
struct Pipe {
  std::vector<std::uint8_t> inbuf;  // undecoded stream prefix
  struct Held {
    Timestamp release_at = 0;
    std::vector<std::uint8_t> frame;  // prefix + body, emitted atomically
  };
  std::deque<Held> heldq;            // FIFO (ChaosLink clamps monotone)
  std::vector<std::uint8_t> outbuf;  // released bytes being written
  std::size_t out_head = 0;
  std::unique_ptr<net::ChaosLink> chaos;
  bool reset_pending = false;
};

struct Conn {
  int client_fd = -1;
  int target_fd = -1;
  bool target_connecting = true;
  const Route* route = nullptr;
  Pipe fwd;  // client -> target (src_dc -> dst_dc)
  Pipe rev;  // target -> client (dst_dc -> src_dc)
  bool dead = false;
};

/// Cut complete frames off the front of `p.inbuf`, run each through the
/// chaos link, and queue the survivors for release.
void ingest(Pipe& p, Timestamp now) {
  std::size_t at = 0;
  while (p.inbuf.size() - at >= 4) {
    std::size_t body = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      body |= static_cast<std::size_t>(p.inbuf[at + i]) << (8 * i);
    }
    const std::size_t total = 4 + body;
    if (p.inbuf.size() - at < total) break;
    const net::ChaosVerdict v = p.chaos->on_frame(total, now);
    if (v.reset) p.reset_pending = true;
    std::vector<std::uint8_t> frame(p.inbuf.begin() + at,
                                    p.inbuf.begin() + at + total);
    if (v.duplicate) {
      p.heldq.push_back(Pipe::Held{now + v.delay_us, frame});
    }
    p.heldq.push_back(Pipe::Held{now + v.delay_us, std::move(frame)});
    at += total;
  }
  p.inbuf.erase(p.inbuf.begin(), p.inbuf.begin() + at);
}

/// Move due held frames into the write buffer.
void release_due(Pipe& p, Timestamp now) {
  while (!p.heldq.empty() && p.heldq.front().release_at <= now) {
    auto& f = p.heldq.front().frame;
    p.outbuf.insert(p.outbuf.end(), f.begin(), f.end());
    p.heldq.pop_front();
  }
  if (p.out_head > 0 && p.out_head == p.outbuf.size()) {
    p.outbuf.clear();
    p.out_head = 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::vector<Route> routes;
  TopologyConfig topo;
  double horizon_s = 10.0;
  double duration_s = 3600.0;
  net::ChaosProfile profile;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(4);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--route") == 0) {
      // LPORT:HOST:TPORT:SRCDC:DSTDC
      std::string spec = value();
      Route r;
      char host[256] = {0};
      unsigned lp = 0, tp = 0, src = 0, dst = 0;
      if (std::sscanf(spec.c_str(), "%u:%255[^:]:%u:%u:%u", &lp, host, &tp,
                      &src, &dst) != 5) {
        std::fprintf(stderr, "chaosproxy: bad --route '%s'\n", spec.c_str());
        return 4;
      }
      r.listen_port = static_cast<std::uint16_t>(lp);
      r.target_host = host;
      r.target_port = static_cast<std::uint16_t>(tp);
      r.src_dc = static_cast<DcId>(src);
      r.dst_dc = static_cast<DcId>(dst);
      routes.push_back(std::move(r));
    } else if (std::strcmp(argv[i], "--dcs") == 0) {
      topo.num_dcs = static_cast<DcId>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--parts") == 0) {
      topo.partitions_per_dc =
          static_cast<PartitionId>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--horizon-s") == 0) {
      horizon_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      duration_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--delay-us") == 0) {
      profile.base_delay_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--jitter-us") == 0) {
      profile.jitter_mean_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      profile.loss_p = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--bw") == 0) {
      profile.bandwidth_bytes_per_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--reorder-us") == 0) {
      profile.reorder_window_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--dup") == 0) {
      profile.dup_p = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--reset") == 0) {
      profile.reset_p = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (routes.empty()) return usage(argv[0]);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  const auto schedule = std::make_shared<const net::ChaosSchedule>(
      seed, topo, static_cast<Duration>(horizon_s * 1e6),
      static_cast<Duration>(duration_s * 1e6), fault::FaultPlanLimits{});
  const Timestamp start = now_us();
  std::fprintf(stderr, "chaosproxy: seed=%llu plan_hash=%llx routes=%zu\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(schedule->plan_hash()),
               routes.size());
  if (verbose) std::fprintf(stderr, "%s", schedule->plan_text().c_str());

  for (Route& r : routes) {
    r.listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (r.listen_fd < 0) {
      std::perror("chaosproxy: socket");
      return 1;
    }
    const int one = 1;
    setsockopt(r.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(r.listen_port);
    if (bind(r.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        listen(r.listen_fd, 64) != 0 || !set_nonblock(r.listen_fd)) {
      std::fprintf(stderr, "chaosproxy: cannot listen on %u: %s\n",
                   r.listen_port, std::strerror(errno));
      return 1;
    }
  }

  std::vector<std::unique_ptr<Conn>> conns;
  std::uint64_t link_counter = 0;

  const auto make_pipe = [&](Pipe& p, DcId src, DcId dst) {
    p.chaos = std::make_unique<net::ChaosLink>(
        seed ^ (0x9e3779b97f4a7c15ULL * ++link_counter), profile);
    p.chaos->bind_schedule(schedule, src, dst, start);
  };

  const auto close_conn = [&](Conn& c) {
    if (c.client_fd >= 0) close(c.client_fd);
    if (c.target_fd >= 0) close(c.target_fd);
    c.client_fd = c.target_fd = -1;
    c.dead = true;
  };

  while (g_stop == 0) {
    const Timestamp now = now_us();
    for (auto& c : conns) {
      if (c->dead) continue;
      // Deliberate resets only (--reset, client routes): cut both sides.
      if (c->fwd.reset_pending || c->rev.reset_pending) {
        if (verbose) {
          std::fprintf(stderr, "chaosproxy: resetting %u->%u\n",
                       c->route->src_dc, c->route->dst_dc);
        }
        close_conn(*c);
        continue;
      }
      // A partitioned direction stalls: held frames stay held past their
      // release time until the window closes (the other direction keeps
      // flowing — asymmetric partitions).
      if (!c->fwd.chaos->blocked(now)) release_due(c->fwd, now);
      if (!c->rev.chaos->blocked(now)) release_due(c->rev, now);
    }
    std::erase_if(conns, [](const auto& c) { return c->dead; });

    std::vector<pollfd> pfds;
    std::vector<Route*> pfd_routes;
    std::vector<std::pair<Conn*, bool>> pfd_conns;  // (conn, is_client_fd)
    for (Route& r : routes) {
      // While the route's forward direction is partitioned, do not accept:
      // the dialer sees connection refusal, exactly like a blackholed path
      // that its SYN retransmits never cross.
      const net::ChaosLinkState st =
          schedule->state(r.src_dc, r.dst_dc, now - start);
      if (st.blocked) continue;
      pfds.push_back({r.listen_fd, POLLIN, 0});
      pfd_routes.push_back(&r);
      pfd_conns.emplace_back(nullptr, false);
    }
    for (auto& c : conns) {
      short cev = POLLIN;
      if (c->rev.out_head < c->rev.outbuf.size()) cev |= POLLOUT;
      pfds.push_back({c->client_fd, cev, 0});
      pfd_routes.push_back(nullptr);
      pfd_conns.emplace_back(c.get(), true);
      short tev = POLLIN;
      if (c->target_connecting || c->fwd.out_head < c->fwd.outbuf.size()) {
        tev |= POLLOUT;
      }
      pfds.push_back({c->target_fd, tev, 0});
      pfd_routes.push_back(nullptr);
      pfd_conns.emplace_back(c.get(), false);
    }

    // Sleep until the next held-frame release (or 10 ms). Blocked pipes are
    // skipped — their frames are due but unreleasable until the partition
    // window closes, and polling at 10 ms is plenty to notice that.
    int timeout_ms = 10;
    for (const auto& c : conns) {
      for (const Pipe* p : {&c->fwd, &c->rev}) {
        if (!p->heldq.empty() && !p->chaos->blocked(now)) {
          const Timestamp dt = p->heldq.front().release_at - now;
          timeout_ms = std::max(
              0, std::min(timeout_ms, static_cast<int>(dt / 1000)));
        }
      }
    }
    const int nready = poll(pfds.data(), pfds.size(), timeout_ms);
    if (nready < 0) {
      // EINTR: a signal landed mid-wait and the revents are unspecified —
      // re-enter the loop instead of consuming them. Anything else is a
      // programming error on our own fd set.
      if (errno != EINTR) {
        std::perror("chaosproxy: poll");
        break;
      }
      continue;
    }
    if (nready == 0) continue;  // timeout: release pass reruns up top

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (Route* r = pfd_routes[i]; r != nullptr) {
        // New inbound connection: dial the target, non-blocking.
        int cfd = -1;
        do {
          cfd = accept(r->listen_fd, nullptr, nullptr);
        } while (cfd < 0 && errno == EINTR);  // interrupted, not failed
        if (cfd < 0) continue;
        set_nonblock(cfd);
        const int one = 1;
        setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        const std::string port_str = std::to_string(r->target_port);
        if (getaddrinfo(r->target_host.c_str(), port_str.c_str(), &hints,
                        &res) != 0 ||
            res == nullptr) {
          close(cfd);
          continue;
        }
        const int tfd = socket(AF_INET, SOCK_STREAM, 0);
        set_nonblock(tfd);
        setsockopt(tfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        connect(tfd, res->ai_addr, res->ai_addrlen);  // EINPROGRESS expected
        freeaddrinfo(res);
        auto conn = std::make_unique<Conn>();
        conn->client_fd = cfd;
        conn->target_fd = tfd;
        conn->route = r;
        make_pipe(conn->fwd, r->src_dc, r->dst_dc);
        make_pipe(conn->rev, r->dst_dc, r->src_dc);
        conns.push_back(std::move(conn));
        continue;
      }
      auto [c, is_client] = pfd_conns[i];
      if (c == nullptr || c->dead) continue;
      const int fd = is_client ? c->client_fd : c->target_fd;
      if (!is_client && c->target_connecting && (pfds[i].revents & POLLOUT)) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          close_conn(*c);
          continue;
        }
        c->target_connecting = false;
      }
      if (pfds[i].revents & (POLLERR | POLLHUP)) {
        close_conn(*c);
        continue;
      }
      if (pfds[i].revents & POLLIN) {
        Pipe& p = is_client ? c->fwd : c->rev;
        std::uint8_t buf[64 * 1024];
        const ssize_t n = read(fd, buf, sizeof(buf));
        if (n <= 0) {
          if (n < 0 &&
              (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
            // spurious wakeup or interrupted read — the bytes are still
            // coming; tearing the proxied connection down here would punch
            // a hole in a live stream.
          } else {
            close_conn(*c);
            continue;
          }
        } else {
          p.inbuf.insert(p.inbuf.end(), buf, buf + n);
          ingest(p, now_us());
        }
      }
      if (pfds[i].revents & POLLOUT) {
        // POLLOUT on the client fd drains rev; on the target fd drains fwd.
        Pipe& p = is_client ? c->rev : c->fwd;
        if (p.out_head < p.outbuf.size()) {
          const ssize_t n = write(fd, p.outbuf.data() + p.out_head,
                                  p.outbuf.size() - p.out_head);
          if (n > 0) {
            p.out_head += static_cast<std::size_t>(n);
          } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            // EINTR is a retry, not a failure — the next poll round resends.
            close_conn(*c);
            continue;
          }
        }
      }
    }
  }
  for (auto& c : conns) close_conn(*c);
  for (Route& r : routes) {
    if (r.listen_fd >= 0) close(r.listen_fd);
  }
  std::fprintf(stderr, "chaosproxy: exiting\n");
  return 0;
}
