// pocc_loadgen — drives a networked poccd cluster over TCP with the paper's
// workload generators (§V-B/C) and verifies the collected client history
// against the causal-consistency checker.
//
//   pocc_loadgen --config cluster.cfg                       # 5 s load, all DCs
//   pocc_loadgen --config cluster.cfg --mode smoke          # causal smoke
//   pocc_loadgen --config cluster.cfg --out BENCH_tcp_loadgen.json
//
// Modes:
//   load  — N closed-loop client sessions per DC run the Get-Put (or Tx-Put)
//           workload for --duration-s, then the merged per-session histories
//           are replayed through the HistoryChecker. Emits one JSON line
//           (throughput + latency percentiles + checker verdict).
//   smoke — deterministic causal scenarios: read-your-writes in one DC and
//           the cross-DC WC-DEP chain (photo/comment, §II-A), plus eventual
//           cross-DC convergence; every session history checked afterwards.
//
// Exit codes: 0 = pass, 1 = consistency violation / incomplete history,
// 2 = operation failures (timeouts), 3 = deadline-budget breach (more than
// --deadline-budget of the ops missed their --op-deadline-us), 4 = usage or
// config error.
//
// --resilient arms the client sessions' retry machinery (deadlines, retry
// of the same op_id with backoff, failover — net/tcp_client.hpp): op
// timeouts become survivable blips, and the JSON reports the per-op
// timeout/retry/failover/overloaded counters so a chaos run can budget its
// failure rate instead of failing on the first lost packet.
//
// --expect-disruption is for crash-recovery drills (a server is killed and
// restarted mid-run): operation timeouts and an incomplete history replay —
// a PUT can be applied and replicated while its reply died with the killed
// process — no longer fail the run. Consistency VIOLATIONS still exit 1;
// that is the whole point of the drill.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checker/client_history.hpp"
#include "checker/history_checker.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_client.hpp"
#include "runtime/rt_node.hpp"
#include "stats/histogram.hpp"
#include "store/key_space.hpp"
#include "workload/workload.hpp"

namespace {

using namespace pocc;

struct Args {
  const char* config_path = nullptr;
  std::string mode = "load";
  long dc = -1;  // -1 = all DCs
  std::uint32_t clients_per_dc = 4;
  /// TcpClientPools (transport threads / socket sets) per DC. One pool's
  /// single transport thread saturates long before a multi-threaded server
  /// does; sessions round-robin across the pools.
  std::uint32_t connections_per_dc = 1;
  double duration_s = 5.0;
  /// Sessions interleaved per driver thread (pipelined mode). 1 = the
  /// classic closed loop: one blocking session per thread. W > 1 groups
  /// every W sessions onto one driver that round-robins them through the
  /// non-blocking start_*/pump/finish_* API, so each pool connection
  /// carries up to W concurrent in-flight ops.
  std::uint32_t pipeline = 1;
  std::string pattern = "getput";
  std::uint32_t gets_per_put = 4;
  std::uint32_t tx_partitions = 2;
  Duration think_us = 0;
  std::uint32_t value_size = 8;
  /// > value_size arms the skewed payload distribution (zipfian size
  /// octaves — see WorkloadConfig::value_size_max).
  std::uint32_t value_size_max = 0;
  std::uint64_t keys_per_partition = 1'000;
  /// Rank offset making this run's keyspace disjoint from earlier runs
  /// against the same live cluster (see WorkloadConfig::key_offset).
  std::uint64_t key_offset = 0;
  /// Key-popularity distribution: "zipfian" (default) or "uniform".
  /// Uniform is zipf with theta 0; the split flag exists so scripts read as
  /// the intent ("--key-dist uniform") rather than a magic theta.
  std::string key_dist = "zipfian";
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
  ClientId client_base = 1;
  const char* out_path = nullptr;
  bool check = true;
  bool expect_disruption = false;
  bool resilient = false;
  /// Per-op deadline handed to every session op (await bound when
  /// --resilient is off, full retry deadline when on).
  Duration op_deadline_us = 10'000'000;
  /// Fail the run (exit 3) when more than this fraction of attempted ops
  /// missed their deadline. Negative = no budget gate.
  double deadline_budget = -1.0;
  /// Event-loop backend of every client pool transport ("" = process
  /// default, which honors POCC_EVENT_BACKEND).
  std::string event_backend;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --config FILE [--mode load|smoke] [--dc N]\n"
      "          [--threads N | --clients N] [--connections N]\n"
      "          [--pipeline W] [--duration-s S] [--pattern getput|txput]\n"
      "          [--gets-per-put N] [--tx-partitions N] [--think-us N]\n"
      "          [--value-size N] [--value-size-max N]\n"
      "          [--keys-per-partition N] [--key-offset N]\n"
      "          [--key-dist zipfian|uniform] [--zipf T | --theta T]\n"
      "          [--seed N] [--client-base N] [--out FILE] [--no-check]\n"
      "          [--expect-disruption] [--resilient]\n"
      "          [--op-deadline-us N] [--deadline-budget F]\n"
      "          [--event-backend epoll|poll|uring]\n",
      argv0);
  return 4;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(4);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--config") == 0) {
      args->config_path = value();
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      args->mode = value();
    } else if (std::strcmp(argv[i], "--dc") == 0) {
      args->dc = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--clients") == 0 ||
               std::strcmp(argv[i], "--threads") == 0) {
      // --threads is the saturation-oriented alias: each closed-loop client
      // session is one driving thread.
      args->clients_per_dc =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      args->connections_per_dc =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
      if (args->connections_per_dc == 0) args->connections_per_dc = 1;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      args->pipeline =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
      if (args->pipeline == 0) args->pipeline = 1;
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      args->duration_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--pattern") == 0) {
      args->pattern = value();
    } else if (std::strcmp(argv[i], "--gets-per-put") == 0) {
      args->gets_per_put =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--tx-partitions") == 0) {
      args->tx_partitions =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--think-us") == 0) {
      args->think_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--value-size") == 0) {
      args->value_size =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--value-size-max") == 0) {
      args->value_size_max =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--keys-per-partition") == 0) {
      args->keys_per_partition = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--key-offset") == 0) {
      args->key_offset = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--key-dist") == 0) {
      args->key_dist = value();
    } else if (std::strcmp(argv[i], "--zipf") == 0 ||
               std::strcmp(argv[i], "--theta") == 0) {
      args->zipf_theta = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args->seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--client-base") == 0) {
      args->client_base = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args->out_path = value();
    } else if (std::strcmp(argv[i], "--no-check") == 0) {
      args->check = false;
    } else if (std::strcmp(argv[i], "--expect-disruption") == 0) {
      args->expect_disruption = true;
    } else if (std::strcmp(argv[i], "--resilient") == 0) {
      args->resilient = true;
    } else if (std::strcmp(argv[i], "--op-deadline-us") == 0) {
      args->op_deadline_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--deadline-budget") == 0) {
      args->deadline_budget = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--event-backend") == 0) {
      args->event_backend = value();
    } else {
      return false;
    }
  }
  if (!args->event_backend.empty()) {
    net::EventLoop::Backend backend;
    if (!net::EventLoop::parse_backend(args->event_backend, &backend)) {
      std::fprintf(stderr, "loadgen: unknown --event-backend '%s'\n",
                   args->event_backend.c_str());
      return false;
    }
    net::EventLoop::set_default_backend(backend);
  }
  if (args->key_dist == "uniform") {
    args->zipf_theta = 0.0;  // uniform = zipf with no skew
  } else if (args->key_dist != "zipfian") {
    std::fprintf(stderr, "loadgen: unknown --key-dist '%s'\n",
                 args->key_dist.c_str());
    return false;
  }
  return args->config_path != nullptr;
}

Duration now_us() { return rt::steady_now_us(); }

struct OpStats {
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> txs{0};
  std::atomic<std::uint64_t> failures{0};
};

/// Per-thread latency histograms, merged after the run (Histogram is not
/// thread-safe).
struct ThreadLatencies {
  stats::Histogram get_us;
  stats::Histogram put_us;
  stats::Histogram tx_us;
};

void run_client(net::TcpSession& session, const workload::WorkloadConfig& wl,
                std::uint32_t partitions, std::uint64_t seed,
                Duration deadline, Duration op_deadline_us, OpStats& ops,
                ThreadLatencies& lat) {
  workload::Generator gen(wl, partitions, seed);
  while (now_us() < deadline) {
    const workload::Op op = gen.next();
    const Duration start = now_us();
    bool ok = false;
    switch (op.type) {
      case workload::OpType::kGet:
        ok = session.get_id(op.keys.front(), op_deadline_us).ok;
        if (ok) {
          ++ops.gets;
          lat.get_us.record(now_us() - start);
        }
        break;
      case workload::OpType::kPut:
        ok = session.put_id(op.keys.front(), op.value, op_deadline_us).ok;
        if (ok) {
          ++ops.puts;
          lat.put_us.record(now_us() - start);
        }
        break;
      case workload::OpType::kRoTx:
        ok = session.ro_tx_ids(op.keys, op_deadline_us).ok;
        if (ok) {
          ++ops.txs;
          lat.tx_us.record(now_us() - start);
        }
        break;
    }
    if (!ok) {
      ++ops.failures;
      continue;  // session may have gone pessimistic; keep driving
    }
    if (wl.think_time_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(wl.think_time_us));
    }
  }
}

/// One session's slot inside a pipelined driver thread.
struct PipelinedClient {
  net::TcpSession* session = nullptr;
  std::unique_ptr<workload::Generator> gen;
  ThreadLatencies* lat = nullptr;
  workload::Op op;
  Duration op_start = 0;
  Duration not_before = 0;  // think-time gate for the next op
  bool active = false;      // an op is in flight on the session
};

/// Drives `clients` round-robin through the non-blocking session API: every
/// pass starts ops on idle sessions (until the run deadline) and pumps the
/// in-flight ones, so one thread keeps |clients| ops outstanding across the
/// shared pool connections. After the deadline no new ops start, but
/// in-flight ones are drained to completion (their own op deadline bounds
/// the grace period).
void run_pipelined(std::vector<PipelinedClient>& clients,
                   const workload::WorkloadConfig& wl, Duration deadline,
                   Duration op_deadline_us, OpStats& ops) {
  while (true) {
    bool progress = false;
    bool any_active = false;
    for (PipelinedClient& c : clients) {
      if (!c.active) {
        const Duration now = now_us();
        if (now >= deadline || now < c.not_before) continue;
        c.op = c.gen->next();
        c.op_start = now;
        bool started = false;
        switch (c.op.type) {
          case workload::OpType::kGet:
            started = c.session->start_get_id(c.op.keys.front(),
                                              op_deadline_us);
            break;
          case workload::OpType::kPut:
            started = c.session->start_put_id(c.op.keys.front(), c.op.value,
                                              op_deadline_us);
            break;
          case workload::OpType::kRoTx:
            started = c.session->start_ro_tx_ids(c.op.keys, op_deadline_us);
            break;
        }
        if (!started) continue;  // unreachable: the session was idle
        c.active = true;
        progress = true;
      }
      if (c.active && c.session->pump()) {
        bool ok = false;
        switch (c.op.type) {
          case workload::OpType::kGet:
            ok = c.session->finish_get().ok;
            if (ok) {
              ++ops.gets;
              c.lat->get_us.record(now_us() - c.op_start);
            }
            break;
          case workload::OpType::kPut:
            ok = c.session->finish_put().ok;
            if (ok) {
              ++ops.puts;
              c.lat->put_us.record(now_us() - c.op_start);
            }
            break;
          case workload::OpType::kRoTx:
            ok = c.session->finish_tx().ok;
            if (ok) {
              ++ops.txs;
              c.lat->tx_us.record(now_us() - c.op_start);
            }
            break;
        }
        if (!ok) ++ops.failures;
        if (ok && wl.think_time_us > 0) {
          c.not_before = now_us() + wl.think_time_us;
        }
        c.active = false;
        progress = true;
      }
      any_active |= c.active;
    }
    if (!any_active && now_us() >= deadline) break;
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

/// Replays all histories; returns checker verdict (violations printed).
struct CheckOutcome {
  bool complete = true;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};

CheckOutcome check_histories(
    const net::ClusterLayout& layout,
    const std::vector<checker::SessionHistory>& histories) {
  checker::HistoryChecker checker(layout.topology.num_dcs);
  const auto result = checker::replay_history(histories, checker);
  CheckOutcome outcome;
  outcome.complete = result.complete;
  outcome.checks = checker.checks_performed();
  outcome.violations = checker.violations().size();
  if (!result.complete) {
    std::fprintf(stderr, "loadgen: history replay incomplete: %s\n",
                 result.error.c_str());
  }
  for (const std::string& v : checker.violations()) {
    std::fprintf(stderr, "loadgen: VIOLATION: %s\n", v.c_str());
  }
  return outcome;
}

int run_load(const Args& args, const net::ClusterLayout& layout) {
  const auto& topo = layout.topology;

  workload::WorkloadConfig wl;
  wl.pattern = args.pattern == "txput" ? workload::Pattern::kTxPut
                                       : workload::Pattern::kGetPut;
  wl.gets_per_put = args.gets_per_put;
  wl.tx_partitions = std::min(args.tx_partitions, topo.partitions_per_dc);
  wl.think_time_us = args.think_us;
  wl.zipf_theta = args.zipf_theta;
  wl.keys_per_partition = args.keys_per_partition;
  wl.key_offset = args.key_offset;
  wl.value_size = args.value_size;
  wl.value_size_max = args.value_size_max;

  std::vector<DcId> dcs;
  if (args.dc >= 0) {
    dcs.push_back(static_cast<DcId>(args.dc));
  } else {
    for (DcId dc = 0; dc < topo.num_dcs; ++dc) dcs.push_back(dc);
  }

  // --connections pools per DC: one pool = one transport thread + one socket
  // per partition; client sessions round-robin across their DC's pools.
  std::vector<std::unique_ptr<net::TcpClientPool>> pools;
  for (const DcId dc : dcs) {
    for (std::uint32_t c = 0; c < args.connections_per_dc; ++c) {
      pools.push_back(std::make_unique<net::TcpClientPool>(layout, dc));
      if (args.resilient) {
        net::ClientResilience res;
        res.enabled = true;
        pools.back()->set_resilience(res);
      }
      pools.back()->start();
    }
  }
  for (auto& pool : pools) {
    if (!pool->wait_connected(10'000'000)) {
      std::fprintf(stderr, "loadgen: cannot reach all partitions of DC %u\n",
                   pool->dc());
      return 4;
    }
  }

  OpStats ops;
  std::vector<ThreadLatencies> lats(dcs.size() * args.clients_per_dc);
  std::vector<std::thread> threads;
  ClientId next_client = args.client_base;
  const Duration start = now_us();
  const Duration deadline =
      start + static_cast<Duration>(args.duration_s * 1e6);
  std::size_t t = 0;
  // Declared at run_load scope: driver threads hold pointers into the
  // groups until join(), so the storage must outlive the if/else below.
  std::vector<std::vector<PipelinedClient>> groups;
  if (args.pipeline <= 1) {
    for (std::size_t d = 0; d < dcs.size(); ++d) {
      for (std::uint32_t i = 0; i < args.clients_per_dc; ++i, ++t) {
        const std::size_t pool_idx =
            d * args.connections_per_dc + i % args.connections_per_dc;
        net::TcpSession* session = &pools[pool_idx]->connect(next_client++);
        const std::uint64_t seed = args.seed * 1'000'003 + t;
        threads.emplace_back([&, session, seed, t] {
          run_client(*session, wl, topo.partitions_per_dc, seed, deadline,
                     args.op_deadline_us, ops, lats[t]);
        });
      }
    }
  } else {
    // Pipelined: every driver thread owns up to --pipeline sessions of one
    // DC and multiplexes them over the DC's pools, so each pool connection
    // carries several in-flight ops at once.
    for (std::size_t d = 0; d < dcs.size(); ++d) {
      for (std::uint32_t i = 0; i < args.clients_per_dc; ++i, ++t) {
        if (i % args.pipeline == 0) groups.emplace_back();
        const std::size_t pool_idx =
            d * args.connections_per_dc + i % args.connections_per_dc;
        PipelinedClient c;
        c.session = &pools[pool_idx]->connect(next_client++);
        c.gen = std::make_unique<workload::Generator>(
            wl, topo.partitions_per_dc, args.seed * 1'000'003 + t);
        c.lat = &lats[t];
        groups.back().push_back(std::move(c));
      }
    }
    for (auto& group : groups) {
      threads.emplace_back([&, clients = &group] {
        run_pipelined(*clients, wl, deadline, args.op_deadline_us, ops);
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s = static_cast<double>(now_us() - start) / 1e6;

  stats::Histogram get_us;
  stats::Histogram put_us;
  stats::Histogram tx_us;
  for (const ThreadLatencies& l : lats) {
    get_us.merge(l.get_us);
    put_us.merge(l.put_us);
    tx_us.merge(l.tx_us);
  }

  std::vector<checker::SessionHistory> histories;
  net::ClientResilienceStats rstats;
  std::uint64_t reconnects = 0;
  for (const auto& pool : pools) {
    auto h = pool->histories();
    histories.insert(histories.end(), h.begin(), h.end());
    rstats += pool->resilience_stats();
    reconnects += pool->transport_stats().reconnects;
  }
  for (auto& pool : pools) pool->stop();

  CheckOutcome verdict;
  if (args.check) verdict = check_histories(layout, histories);

  const std::uint64_t total = ops.gets + ops.puts + ops.txs;
  const std::uint64_t attempted = total + ops.failures.load();
  const double failure_rate =
      attempted > 0
          ? static_cast<double>(ops.failures.load()) / attempted
          : 0.0;
  std::size_t history_events = 0;
  for (const auto& h : histories) history_events += h.events.size();
  // Percentile fields come from the shared stats helper so loadgen, the
  // tail-latency baseline and any future report agree on which quantiles a
  // latency block carries (p50/p99/p999).
  const std::string lat_json = stats::latency_json_fields("get", get_us) +
                               "," + stats::latency_json_fields("put", put_us) +
                               "," + stats::latency_json_fields("tx", tx_us);
  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"tcp_loadgen\",\"mode\":\"load\",\"system\":\"%s\","
      "\"event_backend\":\"%s\","
      "\"dcs\":%u,\"partitions\":%u,\"clients_per_dc\":%u,"
      "\"connections_per_dc\":%u,\"pipeline\":%u,\"pattern\":\"%s\","
      "\"key_dist\":\"%s\",\"zipf_theta\":%.3f,\"keys_per_partition\":%llu,"
      "\"value_size\":%u,\"value_size_max\":%u,"
      "\"seed\":%llu,\"duration_s\":%.2f,\"ops\":%llu,\"ops_per_sec\":%.1f,"
      "\"gets\":%llu,\"puts\":%llu,\"ro_txs\":%llu,\"failures\":%llu,"
      "%s,"
      "\"history_events\":%zu,\"checks\":%llu,\"violations\":%llu,"
      "\"resilient\":%s,\"op_deadline_us\":%lld,"
      "\"op_timeouts\":%llu,\"op_retries\":%llu,\"op_failovers\":%llu,"
      "\"op_overloaded\":%llu,\"breaker_opens\":%llu,"
      "\"deadline_exhausted\":%llu,\"reconnects\":%llu,"
      "\"failure_rate\":%.6f}",
      net::system_name(layout.system),
      net::EventLoop::backend_name(net::EventLoop::default_backend()),
      topo.num_dcs, topo.partitions_per_dc,
      args.clients_per_dc, args.connections_per_dc, args.pipeline,
      args.pattern.c_str(), args.key_dist.c_str(), args.zipf_theta,
      static_cast<unsigned long long>(args.keys_per_partition),
      args.value_size, args.value_size_max,
      static_cast<unsigned long long>(args.seed), elapsed_s,
      static_cast<unsigned long long>(total),
      elapsed_s > 0 ? static_cast<double>(total) / elapsed_s : 0.0,
      static_cast<unsigned long long>(ops.gets.load()),
      static_cast<unsigned long long>(ops.puts.load()),
      static_cast<unsigned long long>(ops.txs.load()),
      static_cast<unsigned long long>(ops.failures.load()),
      lat_json.c_str(), history_events,
      static_cast<unsigned long long>(verdict.checks),
      static_cast<unsigned long long>(verdict.violations),
      args.resilient ? "true" : "false",
      static_cast<long long>(args.op_deadline_us),
      static_cast<unsigned long long>(rstats.timeouts),
      static_cast<unsigned long long>(rstats.retries),
      static_cast<unsigned long long>(rstats.failovers),
      static_cast<unsigned long long>(rstats.overloaded),
      static_cast<unsigned long long>(rstats.breaker_opens),
      static_cast<unsigned long long>(rstats.deadline_exhausted),
      static_cast<unsigned long long>(reconnects), failure_rate);
  std::printf("%s\n", json);
  if (args.out_path != nullptr) {
    std::FILE* f = std::fopen(args.out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot open %s\n", args.out_path);
      return 4;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }

  if (verdict.violations > 0) return 1;
  if (!verdict.complete && !args.expect_disruption) return 1;
  if (total == 0) return 2;  // even a disrupted run must complete some work
  if (args.deadline_budget >= 0.0 && failure_rate > args.deadline_budget) {
    std::fprintf(stderr,
                 "loadgen: deadline budget breached — %.4f of ops failed "
                 "their deadline (budget %.4f)\n",
                 failure_rate, args.deadline_budget);
    return 3;
  }
  if (ops.failures.load() > 0 && !args.expect_disruption &&
      args.deadline_budget < 0.0) {
    return 2;
  }
  return 0;
}

/// Poll `fn` until true or `timeout_us` elapsed.
template <typename Fn>
bool eventually(Duration timeout_us, Fn&& fn) {
  const Duration deadline = now_us() + timeout_us;
  while (now_us() < deadline) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return fn();
}

int run_smoke(const Args& args, const net::ClusterLayout& layout) {
  const auto& topo = layout.topology;
  if (topo.num_dcs < 2) {
    std::fprintf(stderr, "loadgen: smoke mode needs >= 2 DCs\n");
    return 4;
  }
  std::vector<std::unique_ptr<net::TcpClientPool>> pools;
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    pools.push_back(std::make_unique<net::TcpClientPool>(layout, dc));
    pools.back()->start();
  }
  for (auto& pool : pools) {
    if (!pool->wait_connected(10'000'000)) {
      std::fprintf(stderr, "loadgen: cannot reach all partitions of DC %u\n",
                   pool->dc());
      return 4;
    }
  }
  ClientId next_client = args.client_base;
  int failures = 0;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "loadgen: SMOKE FAIL: %s\n", what);
    ++failures;
  };

  // --- read-your-writes, single DC ---
  {
    net::TcpSession& s = pools[0]->connect(next_client++);
    if (!s.put("smoke:ryw", "v1").ok) fail("RYW put timed out");
    const auto got = s.get("smoke:ryw");
    if (!(got.ok && got.found && got.value == "v1")) {
      fail("read-your-writes: put not visible to its own session");
    }
  }

  // --- WC-DEP chain across DCs (photo/comment, §II-A) ---
  {
    net::TcpSession& alice = pools[0]->connect(next_client++);
    net::TcpSession& bob = pools[1]->connect(next_client++);
    const DcId carol_dc = topo.num_dcs >= 3 ? 2 : 1;
    net::TcpSession& carol = pools[carol_dc]->connect(next_client++);

    if (!alice.put("smoke:photo", "selfie").ok) fail("photo put timed out");
    if (!eventually(15'000'000, [&] {
          const auto got = bob.get("smoke:photo");
          return got.ok && got.found;
        })) {
      fail("photo never replicated to DC 1");
    }
    if (!bob.put("smoke:comment", "nice!").ok) fail("comment put timed out");
    if (!eventually(15'000'000, [&] {
          const auto got = carol.get("smoke:comment");
          return got.ok && got.found;
        })) {
      fail("comment never replicated");
    }
    const auto photo = carol.get("smoke:photo");
    if (!(photo.ok && photo.found && photo.value == "selfie")) {
      fail("WC-DEP violated: comment visible but photo missing");
    }
  }

  // --- eventual cross-DC convergence of a single write ---
  {
    net::TcpSession& writer = pools[0]->connect(next_client++);
    if (!writer.put("smoke:geo", "hello").ok) fail("geo put timed out");
    for (DcId dc = 1; dc < topo.num_dcs; ++dc) {
      net::TcpSession& reader = pools[dc]->connect(next_client++);
      if (!eventually(15'000'000, [&] {
            const auto got = reader.get("smoke:geo");
            return got.ok && got.found && got.value == "hello";
          })) {
        fail("write never became visible in a remote DC");
      }
    }
  }

  std::vector<checker::SessionHistory> histories;
  for (const auto& pool : pools) {
    auto h = pool->histories();
    histories.insert(histories.end(), h.begin(), h.end());
  }
  for (auto& pool : pools) pool->stop();

  CheckOutcome verdict;
  if (args.check) verdict = check_histories(layout, histories);
  if (!verdict.complete || verdict.violations > 0) return 1;
  if (failures > 0) return 2;
  std::printf(
      "{\"bench\":\"tcp_loadgen\",\"mode\":\"smoke\",\"system\":\"%s\","
      "\"dcs\":%u,\"partitions\":%u,\"checks\":%llu,\"violations\":0,"
      "\"result\":\"pass\"}\n",
      net::system_name(layout.system), topo.num_dcs, topo.partitions_per_dc,
      static_cast<unsigned long long>(verdict.checks));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return usage(argv[0]);

  std::string error;
  auto layout = net::load_cluster_config(args.config_path, &error);
  if (!layout.has_value()) {
    std::fprintf(stderr, "loadgen: bad config: %s\n", error.c_str());
    return 4;
  }

  if (args.mode == "load") return run_load(args, *layout);
  if (args.mode == "smoke") return run_smoke(args, *layout);
  std::fprintf(stderr, "loadgen: unknown mode '%s'\n", args.mode.c_str());
  return 4;
}
