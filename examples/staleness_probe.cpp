// Staleness probe: run the same production-like workload against POCC and
// Cure* side by side on the simulator and compare what clients actually get —
// data freshness, blocking incidence, and protocol overhead (the trade-off at
// the heart of the paper).
#include <cstdio>

#include "cluster/sim_cluster.hpp"

using namespace pocc;

namespace {

struct Probe {
  cluster::ClusterMetrics metrics;
  net::NetworkStats net;
};

Probe run(cluster::SystemKind system, std::uint32_t clients_per_partition) {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 8;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::aws_three_dc();
  cfg.system = system;
  cfg.seed = 99;

  cluster::SimCluster sim_cluster(cfg);
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 8;  // write-heavier than 32:1 to surface staleness
  wl.think_time_us = 10'000;
  wl.keys_per_partition = 100'000;
  sim_cluster.add_workload_clients(clients_per_partition, wl);

  sim_cluster.run_for(400'000);
  sim_cluster.begin_measurement();
  sim_cluster.run_for(1'500'000);
  Probe p;
  p.metrics = sim_cluster.end_measurement();
  p.net = p.metrics.network;
  sim_cluster.stop_clients();
  return p;
}

}  // namespace

int main() {
  std::printf("Staleness probe: identical workload on POCC vs Cure*\n");
  std::printf("(3 DCs x 8 partitions, 8:1 GET:PUT, zipf 0.99)\n\n");

  const std::uint32_t clients = 96;
  const Probe pocc = run(cluster::SystemKind::kPocc, clients);
  const Probe cure = run(cluster::SystemKind::kCure, clients);

  std::printf("%-34s %14s %14s\n", "metric", "POCC", "Cure*");
  auto row = [](const char* name, double a, double b, const char* unit) {
    std::printf("%-34s %12.4g%s %12.4g%s\n", name, a, unit, b, unit);
  };
  row("throughput (Mops/s)", pocc.metrics.throughput_ops_per_sec / 1e6,
      cure.metrics.throughput_ops_per_sec / 1e6, "  ");
  row("avg response time (ms)", pocc.metrics.client_ops.avg_latency_us() / 1e3,
      cure.metrics.client_ops.avg_latency_us() / 1e3, "  ");
  row("% old reads", pocc.metrics.staleness.pct_old(),
      cure.metrics.staleness.pct_old(), " %");
  row("% unmerged reads", pocc.metrics.staleness.pct_unmerged(),
      cure.metrics.staleness.pct_unmerged(), " %");
  row("blocking probability", pocc.metrics.blocking.blocking_probability(),
      cure.metrics.blocking.blocking_probability(), "  ");
  row("avg blocking time (ms)",
      pocc.metrics.blocking.avg_blocking_time_us() / 1e3,
      cure.metrics.blocking.avg_blocking_time_us() / 1e3, "  ");
  row("stabilization messages", static_cast<double>(pocc.net.stabilization_messages),
      static_cast<double>(cure.net.stabilization_messages), "  ");
  row("heartbeat messages", static_cast<double>(pocc.net.heartbeat_messages),
      static_cast<double>(cure.net.heartbeat_messages), "  ");
  row("total network bytes (MB)", static_cast<double>(pocc.net.bytes) / 1e6,
      static_cast<double>(cure.net.bytes) / 1e6, "  ");

  std::printf(
      "\nReading the table: POCC trades a (rare, bounded) chance of briefly\n"
      "stalling a request for returning the freshest received data with no\n"
      "stabilization traffic. Cure* never stalls on optimism but serves\n"
      "stale data under write churn and pays a continuous stabilization\n"
      "overhead (§III, §V-B of the paper).\n");
  return 0;
}
