// Social-network scenario on the *threaded runtime* — the engines running as
// a real in-process store with wall-clock time and per-node threads.
//
// The classic causal-consistency anomaly (Lloyd et al., COPS): Alice removes
// her boss from an access list and then posts a photo. Under causal
// consistency no observer may see the photo while still reading the old
// access list *if they read the ACL after the photo*, because the photo
// causally depends on the ACL update.
//
// The demo also shows the freshness difference between POCC and Cure*: the
// same write becomes visible in a remote DC as soon as it arrives under POCC,
// but only after a stabilization round under Cure*.
#include <chrono>
#include <cstdio>
#include <thread>

#include "runtime/rt_cluster.hpp"

using namespace pocc;

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void run_acl_scenario(rt::System system, const char* name) {
  rt::RtClusterConfig cfg;
  cfg.topology.num_dcs = 2;
  cfg.topology.partitions_per_dc = 2;
  cfg.system = system;
  cfg.inter_dc_delay_us = 30'000;  // 30 ms WAN hop
  cfg.protocol.heartbeat_interval_us = 5'000;
  cfg.protocol.stabilization_interval_us = 20'000;
  rt::Cluster cluster(cfg);

  rt::Session& alice = cluster.connect(0);
  rt::Session& boss = cluster.connect(1);

  std::printf("--- %s ---\n", name);
  alice.put("acl:alice", "friends+boss");
  alice.put("photo:alice", "(none)");
  sleep_ms(200);  // initial state replicates everywhere

  // Alice removes her boss, *then* posts the party photo.
  alice.put("acl:alice", "friends-only");
  alice.put("photo:alice", "party.jpg");
  std::printf("alice: acl=friends-only, then photo=party.jpg\n");

  // The boss polls from the remote DC.
  for (int i = 0; i < 10; ++i) {
    const auto photo = boss.get("photo:alice");
    if (photo.ok && photo.value == "party.jpg") {
      // Causality: having seen the photo, the ACL update must be visible.
      const auto acl = boss.get("acl:alice");
      std::printf(
          "boss sees photo after ~%d ms; acl read back: \"%s\" %s\n", i * 20,
          acl.value.c_str(),
          acl.value == "friends-only" ? "(causally consistent -- OK)"
                                      : "**ANOMALY**");
      return;
    }
    sleep_ms(20);
  }
  std::printf("boss never saw the photo (still hidden by visibility rules)\n");
}

void run_freshness_probe(rt::System system, const char* name) {
  rt::RtClusterConfig cfg;
  cfg.topology.num_dcs = 2;
  cfg.topology.partitions_per_dc = 2;
  cfg.system = system;
  cfg.inter_dc_delay_us = 20'000;
  cfg.protocol.heartbeat_interval_us = 5'000;
  cfg.protocol.stabilization_interval_us = 100'000;  // slow GSS on purpose
  rt::Cluster cluster(cfg);
  rt::Session& writer = cluster.connect(0);
  rt::Session& reader = cluster.connect(1);

  writer.put("breaking-news", "headline!");
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 60; ++i) {
    const auto r = reader.get("breaking-news");
    if (r.ok && r.found) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      std::printf("%-6s: remote reader saw the update after ~%lld ms\n", name,
                  static_cast<long long>(ms));
      return;
    }
    sleep_ms(10);
  }
  std::printf("%-6s: update still not visible after 600 ms\n", name);
}

}  // namespace

int main() {
  std::printf("Social-network demo on the threaded runtime\n\n");
  run_acl_scenario(rt::System::kPocc, "ACL scenario under POCC");
  run_acl_scenario(rt::System::kCure, "ACL scenario under Cure*");

  std::printf("\nFreshness probe (20 ms WAN, Cure* stabilization 100 ms):\n");
  run_freshness_probe(rt::System::kPocc, "POCC");
  run_freshness_probe(rt::System::kCure, "Cure*");
  std::printf(
      "\nPOCC exposes the update one WAN hop after the write; Cure* waits\n"
      "for the next stabilization round on top of replication (§III-A).\n");
  return 0;
}
