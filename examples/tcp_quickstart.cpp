// Quickstart for the TCP deployment layer: a 2-DC x 2-partition cluster
// hosted by TWO multi-partition TcpNodeHosts (one per DC, both partitions on
// a small worker pool) behind real localhost sockets (ephemeral ports),
// driven by blocking TcpSessions — the in-process twin of a `poccd` +
// `pocc_loadgen` deployment (see README "Running a real cluster").
// Everything here is the same engine code the simulator runs; only the host
// differs: cross-partition traffic within a DC is an in-process queue push,
// inter-DC replication rides coalesced Batch frames.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/tcp_client.hpp"
#include "net/tcp_node_host.hpp"

using namespace pocc;

int main() {
  net::ClusterLayout layout;
  layout.topology.num_dcs = 2;
  layout.topology.partitions_per_dc = 2;
  layout.system = rt::System::kPocc;

  // One host per DC on an ephemeral port, then tell everyone where everyone
  // else ended up (a poccd deployment reads the same layout from a file).
  std::vector<std::unique_ptr<net::TcpNodeHost>> hosts;
  for (DcId dc = 0; dc < layout.topology.num_dcs; ++dc) {
    net::ProcessSpec spec;
    spec.dc = dc;
    spec.parts = {0, 1};
    spec.threads = 2;
    spec.host = "127.0.0.1";
    net::TcpNodeHost::Options opt;
    opt.seed = 1 + hosts.size();
    hosts.push_back(std::make_unique<net::TcpNodeHost>(spec, layout, opt));
    spec.port = hosts.back()->port();
    layout.processes.push_back(spec);
    for (PartitionId p = 0; p < layout.topology.partitions_per_dc; ++p) {
      layout.nodes.push_back(
          net::NodeAddress{NodeId{dc, p}, "127.0.0.1", spec.port});
    }
  }
  for (auto& host : hosts) host->start(layout.processes);

  net::TcpClientPool dc0(layout, 0);
  net::TcpClientPool dc1(layout, 1);
  dc0.start();
  dc1.start();
  dc0.wait_connected(5'000'000);
  dc1.wait_connected(5'000'000);

  net::TcpSession& alice = dc0.connect(1);
  net::TcpSession& bob = dc1.connect(2);

  const auto put = alice.put("user:alice", "photo.jpg");
  std::printf("alice PUT over TCP: ok=%d ut=%lld\n", put.ok,
              static_cast<long long>(put.ut));
  const auto own = alice.get("user:alice");
  std::printf("alice reads her write: '%s'\n", own.value.c_str());

  // Bob (other DC) polls until replication lands.
  for (int i = 0; i < 1'000; ++i) {
    const auto got = bob.get("user:alice");
    if (got.ok && got.found) {
      std::printf("bob sees it in DC1 after replication: '%s'\n",
                  got.value.c_str());
      break;
    }
  }

  dc0.stop();
  dc1.stop();
  for (auto& host : hosts) host->stop();
  std::printf("done\n");
  return 0;
}
