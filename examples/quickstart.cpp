// Quickstart: spin up a simulated 3-DC POCC deployment, perform causally
// related PUT/GET/RO-TX operations, and inspect the guarantees.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cluster/sim_cluster.hpp"
#include "store/key_space.hpp"

using namespace pocc;

int main() {
  // 3 data centers x 4 partitions, geo latencies modeled on the paper's
  // Oregon/Virginia/Ireland deployment, NTP-grade clock skew.
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 4;
  cfg.latency = LatencyConfig::aws_three_dc();
  cfg.system = cluster::SystemKind::kPocc;
  cfg.seed = 7;

  cluster::SimCluster cluster(cfg);
  std::printf("Cluster up: %zu nodes, 3 DCs (POCC protocol)\n\n",
              cluster.node_count());

  // Alice writes from DC 0; Bob reads from DC 2 (Ireland).
  auto& alice = cluster.create_manual_client(/*dc=*/0);
  auto& bob = cluster.create_manual_client(/*dc=*/2);
  cluster.run_for(10'000);  // let clocks and heartbeats settle

  // --- simple PUT / GET ---
  const auto put = alice.put("user:alice:status", "researching");
  std::printf("alice PUT user:alice:status -> ut=%lld\n",
              static_cast<long long>(put.ut));
  const auto get = alice.get("user:alice:status");
  std::printf("alice GET user:alice:status -> \"%s\" (read-your-writes)\n\n",
              get.value.c_str());

  // --- causality across keys and data centers ---
  alice.put("photo:42", "sunset.jpg");
  alice.put("comment:42", "check out photo:42!");
  std::printf("alice wrote photo:42 then comment:42 (comment depends on photo)\n");

  // Give replication one inter-DC hop (~62 ms Oregon->Ireland).
  cluster.run_for(120'000);

  const auto comment = bob.get("comment:42");
  std::printf("bob (Ireland) GET comment:42 -> found=%d \"%s\"\n",
              comment.found, comment.value.c_str());
  const auto photo = bob.get("photo:42");
  std::printf("bob (Ireland) GET photo:42   -> found=%d \"%s\"\n",
              photo.found, photo.value.c_str());
  std::printf("causal consistency: seeing the comment implies seeing the "
              "photo%s\n\n",
              comment.found && !photo.found ? "  **VIOLATED**" : " -- OK");

  // --- optimistic freshness ---
  // POCC exposes a remote update the moment it is received, even before its
  // dependencies are confirmed stable (that is the "optimistic" in OCC).
  alice.put("ticker", "v1");
  cluster.run_for(80'000);  // just past the one-way Oregon->Ireland latency
  const auto fresh = bob.get("ticker");
  std::printf("bob reads ticker ~80 ms after alice's write: \"%s\" "
              "(blocked %lld us)\n\n",
              fresh.value.c_str(), static_cast<long long>(fresh.blocked_us));

  // --- causally consistent read-only transaction ---
  const auto tx = bob.ro_tx({"photo:42", "comment:42", "ticker"});
  std::printf("bob RO-TX over 3 keys returned %zu items:\n", tx.items.size());
  for (const auto& item : tx.items) {
    std::printf("  %-12s found=%d value=\"%s\"\n",
                store::key_name(item.key).c_str(),
                item.found, item.value.c_str());
  }
  std::printf("\nDone. See examples/social_network.cpp for the threaded "
              "runtime,\nexamples/staleness_probe.cpp for POCC-vs-Cure* "
              "freshness, and\nexamples/partition_failover.cpp for HA-POCC.\n");
  return 0;
}
