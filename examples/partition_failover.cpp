// HA-POCC failover walk-through (§III-B of the paper).
//
// Builds the exact blocking scenario the paper describes — a client whose
// read dependency cannot arrive because of a network partition — and shows
// the recovery mechanism step by step: the server detects the partition via
// the blocked-request timeout, closes the session, the client re-initializes
// in pessimistic (Cure-style) mode and keeps operating, and after the heal
// the session is promoted back to the optimistic protocol.
#include <cstdio>

#include "cluster/sim_cluster.hpp"

using namespace pocc;

int main() {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = 2;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::uniform(300, 0);
  cfg.latency.inter_dc_base_us = {
      {0, 5'000, 5'000}, {5'000, 0, 5'000}, {5'000, 5'000, 0}};
  cfg.clock = ClockConfig::perfect();
  cfg.system = cluster::SystemKind::kHaPocc;
  cfg.protocol.block_timeout_us = 100'000;  // partition suspected after 100 ms
  cfg.seed = 5;

  cluster::SimCluster cluster(cfg);
  auto& writer_dc0 = cluster.create_manual_client(0);
  auto& relay_dc2 = cluster.create_manual_client(2);
  auto& reader_dc1 = cluster.create_manual_client(1);
  cluster.run_for(10'000);

  std::printf("== phase 1: healthy operation ==\n");
  writer_dc0.put("0:profile", "v1");
  cluster.run_for(50'000);
  auto r = reader_dc1.get("0:profile");
  std::printf("reader(DC1) GET 0:profile -> \"%s\" (optimistic session)\n\n",
              r.value.c_str());

  std::printf("== phase 2: DC0-DC1 partition; dependency chain via DC2 ==\n");
  cluster.partition_dcs(0, 1);
  writer_dc0.put("0:x", "x2-during-partition");
  cluster.run_for(50'000);  // x2 reaches DC2 (but not DC1)
  relay_dc2.get("0:x");
  relay_dc2.put("1:y", "y-depends-on-x2");
  cluster.run_for(50'000);  // y reaches DC1
  auto y = reader_dc1.get("1:y");
  std::printf("reader(DC1) reads y (\"%s\") -> now depends on x2, which DC1\n"
              "cannot receive while the partition is up\n",
              y.value.c_str());

  std::printf("\n== phase 3: blocked read -> partition detected ==\n");
  auto blocked = reader_dc1.get("0:anything", /*max_wait=*/400'000);
  std::printf("GET on partition-0 data: ok=%d (server closed the session "
              "after the %lld ms block timeout)\n",
              blocked.ok,
              static_cast<long long>(cfg.protocol.block_timeout_us / 1000));
  std::printf("session mode now: %s\n",
              reader_dc1.engine().pessimistic() ? "PESSIMISTIC" : "optimistic");

  std::printf("\n== phase 4: pessimistic operation during the partition ==\n");
  auto pess_read = reader_dc1.get("0:anything", 500'000);
  auto pess_write = reader_dc1.put("1:during-partition", "still-working",
                                   500'000);
  std::printf("pessimistic GET ok=%d, PUT ok=%d — the session stays "
              "available (Cure-style visibility)\n",
              pess_read.ok, pess_write.ok);

  std::printf("\n== phase 5: heal and promotion ==\n");
  cluster.heal_dcs(0, 1);
  cluster.run_for(300'000);
  auto after = reader_dc1.get("0:x", 500'000);
  std::printf("after heal: GET 0:x -> \"%s\"\n", after.value.c_str());
  std::printf("session mode now: %s (promoted back, §III-B)\n",
              reader_dc1.engine().pessimistic() ? "PESSIMISTIC" : "optimistic");

  std::printf("\n== phase 6: permanent DC loss & lost-update discard ==\n");
  // Rebuild the dependency chain: DC0 writes x3 while cut off from DC1 only;
  // DC2 relays a dependent write to DC1; then DC0 fails for good.
  cluster.partition_dcs(0, 1);
  writer_dc0.put("0:x", "x3-before-dc0-dies");
  cluster.run_for(50'000);
  relay_dc2.get("0:x");
  relay_dc2.put("1:z", "z-depends-on-x3");
  cluster.run_for(50'000);
  cluster.isolate_dc(0);  // DC0 is gone for good
  const auto discarded = cluster.declare_dc_lost(0);
  std::printf("DC0 declared lost: %llu version(s) depending on unreceived "
              "DC0 updates were discarded\n(z at DC1 depended on x3, which "
              "only DC2 ever received — the \"lost update\"\ncost of optimism "
              "after an unrecoverable failure, §III-B)\n",
              static_cast<unsigned long long>(discarded));
  return 0;
}
