#!/usr/bin/env bash
# Print the delta between a fresh perf_smoke JSON line and the committed
# baseline (bench/baselines/BENCH_perf_smoke.json). Informational only — CI
# runs it non-gating so the perf trajectory is visible on every push without
# flaking on runner noise.
#
# usage: scripts/perf_delta.sh CURRENT.json [BASELINE.json]
set -euo pipefail

CURRENT="${1:?usage: perf_delta.sh CURRENT.json [BASELINE.json]}"
BASELINE="${2:-bench/baselines/BENCH_perf_smoke.json}"

if [[ ! -f "$CURRENT" || ! -f "$BASELINE" ]]; then
  echo "perf_delta: missing $CURRENT or $BASELINE" >&2
  exit 1
fi

extract() { # file key -> numeric value (empty if absent)
  sed -n 's/.*"'"$2"'":\([0-9][0-9.]*\).*/\1/p' "$1"
}

echo "perf_smoke delta vs committed baseline ($BASELINE)"
echo "(positive % = larger than baseline; wall_ms/peak_rss_kb lower is better)"
for key in sim_ops_per_sec events_per_sec wall_ms peak_rss_kb; do
  cur="$(extract "$CURRENT" "$key")"
  base="$(extract "$BASELINE" "$key")"
  if [[ -z "$cur" || -z "$base" ]]; then
    echo "  $key: missing from one of the files"
    continue
  fi
  awk -v c="$cur" -v b="$base" -v k="$key" 'BEGIN {
    d = (b > 0) ? (c - b) / b * 100 : 0
    printf "  %-18s current %14.1f   baseline %14.1f   %+7.1f%%\n", k, c, b, d
  }'
done
