#!/usr/bin/env bash
# Print the delta between a fresh bench JSON line and its committed baseline.
# Handles all artifact kinds:
#   * perf_smoke      (bench/baselines/BENCH_perf_smoke.json)   — simulator
#   * tcp_loadgen     (bench/baselines/BENCH_tcp_loadgen.json)  — e2e cluster
#   * recovery        (bench/baselines/BENCH_recovery.json)     — WAL replay
#   * event_loop      (bench/baselines/BENCH_event_loop.json)   — readiness backends
# Informational only — CI runs it non-gating so the perf trajectory is
# visible on every push without flaking on runner noise.
#
# usage: perf_delta.sh CURRENT.json [BASELINE.json]
set -euo pipefail

CURRENT="${1:?usage: perf_delta.sh CURRENT.json [BASELINE.json]}"

if [[ ! -f "$CURRENT" ]]; then
  echo "perf_delta: missing $CURRENT" >&2
  exit 1
fi

extract() { # file key -> numeric value (empty if absent)
  sed -n 's/.*"'"$2"'":\([0-9][0-9.]*\).*/\1/p' "$1"
}

# Key set AND default baseline depend on the bench that produced the line.
if grep -q '"bench":"tcp_loadgen"' "$CURRENT"; then
  BASELINE="${2:-bench/baselines/BENCH_tcp_loadgen.json}"
  KEYS="ops_per_sec get_p50_us get_p99_us get_p999_us put_p50_us put_p99_us put_p999_us failures"
  NOTE="(positive % = larger than baseline; ops_per_sec higher is better, latencies lower)"
elif grep -q '"bench":"recovery"' "$CURRENT"; then
  BASELINE="${2:-bench/baselines/BENCH_recovery.json}"
  KEYS="replay_1k_ms replay_10k_ms replay_50k_ms replay_50k_snap_ms replay_mb_per_sec"
  NOTE="(positive % = larger than baseline; replay_*_ms lower is better, mb_per_sec higher)"
elif grep -q '"bench":"event_loop"' "$CURRENT"; then
  BASELINE="${2:-bench/baselines/BENCH_event_loop.json}"
  # uring_* keys are absent when the kernel lacks io_uring — reported as
  # missing, not an error (the bench only emits backends it could run).
  KEYS="epoll_10k_wakeup_ns epoll_100k_wakeup_ns epoll_10k_scan_ns epoll_100k_scan_ns uring_10k_wakeup_ns uring_100k_wakeup_ns uring_10k_scan_ns uring_100k_scan_ns poll_10k_wakeup_ns"
  NOTE="(positive % = larger than baseline; all keys are costs — lower is better)"
else
  BASELINE="${2:-bench/baselines/BENCH_perf_smoke.json}"
  KEYS="sim_ops_per_sec events_per_sec wall_ms peak_rss_kb"
  NOTE="(positive % = larger than baseline; wall_ms/peak_rss_kb lower is better)"
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "perf_delta: missing $BASELINE" >&2
  exit 1
fi

echo "perf delta vs committed baseline ($BASELINE)"
echo "$NOTE"
for key in $KEYS; do
  cur="$(extract "$CURRENT" "$key")"
  base="$(extract "$BASELINE" "$key")"
  if [[ -z "$cur" || -z "$base" ]]; then
    echo "  $key: missing from one of the files"
    continue
  fi
  awk -v c="$cur" -v b="$base" -v k="$key" 'BEGIN {
    d = (b > 0) ? (c - b) / b * 100 : 0
    printf "  %-18s current %14.1f   baseline %14.1f   %+7.1f%%\n", k, c, b, d
  }'
done
