#!/usr/bin/env bash
# Chaos soak across real process boundaries: a 3-DC poccd cluster whose
# inter-DC replication links all pass through pocc_chaosproxy — one proxy
# route per DIRECTED DC pair, so the seed-deterministic fault schedule
# (delay/jitter/loss-stalls/reorder + timed full/asymmetric partitions) hits
# the actual wire between processes. Servers run durable (--data-dir) with
# bounded admission (--max-inbox); a kill -9 + restart leg runs mid-load;
# the load itself runs through pocc_loadgen --resilient, so every op has a
# deadline, idempotent retries, backoff and failover — and the run is gated
# on ZERO causal-consistency violations plus a deadline-failure budget.
#
# Route plumbing: each poccd gets its OWN config file in which every peer
# DC's address points at the proxy port for the (self -> peer) direction,
# while its own line keeps the real listen address. Clients (loadgen) use
# the undoctored config — client resilience is exercised by the kill leg
# and the server-side admission bounds, not by the proxy.
#
# Each poccd also serves /metrics + /readyz on SOAK_METRICS_BASE_PORT+dc;
# startup and post-restart waits poll /readyz (WAL recovery complete AND all
# peer links up — through the proxies) instead of probing listen sockets.
#
# usage: scripts/chaos_soak.sh [BUILD_DIR] [OUT_DIR]
# env:   SOAK_SEED (1)  SOAK_SYSTEM (pocc)  SOAK_DURATION_S (20)
#        SOAK_BASE_PORT (7550)  SOAK_PROXY_BASE_PORT (7560)
#        SOAK_METRICS_BASE_PORT (7590)
#        SOAK_CLIENTS (8)  SOAK_THREADS (2)  SOAK_KILL (1)
#        SOAK_DEADLINE_BUDGET (0.05)  SOAK_OP_DEADLINE_US (15000000)
#        SOAK_DELAY_US (2000)  SOAK_JITTER_US (1000)  SOAK_LOSS (0.01)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-chaos-out}"
SEED="${SOAK_SEED:-1}"
SYSTEM="${SOAK_SYSTEM:-pocc}"
DURATION_S="${SOAK_DURATION_S:-20}"
BASE_PORT="${SOAK_BASE_PORT:-7550}"
PROXY_BASE_PORT="${SOAK_PROXY_BASE_PORT:-7560}"
CLIENTS="${SOAK_CLIENTS:-8}"
THREADS="${SOAK_THREADS:-2}"
KILL="${SOAK_KILL:-1}"
DEADLINE_BUDGET="${SOAK_DEADLINE_BUDGET:-0.05}"
OP_DEADLINE_US="${SOAK_OP_DEADLINE_US:-15000000}"
DELAY_US="${SOAK_DELAY_US:-2000}"
JITTER_US="${SOAK_JITTER_US:-1000}"
LOSS="${SOAK_LOSS:-0.01}"
METRICS_BASE_PORT="${SOAK_METRICS_BASE_PORT:-7590}"
DCS=3
PARTS=2

for bin in poccd pocc_loadgen pocc_chaosproxy; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "chaos_soak: $BUILD_DIR/$bin not built" >&2
    exit 3
  fi
done

mkdir -p "$OUT_DIR"

# Real node addresses (the client view).
real_port() { echo $((BASE_PORT + $1)); }
# Proxy listen port for the directed pair src -> dst.
proxy_port() { echo $((PROXY_BASE_PORT + $1 * DCS + $2)); }
# Embedded observability endpoint of each poccd.
metrics_port() { echo $((METRICS_BASE_PORT + $1)); }

# GET http://127.0.0.1:PORT/PATH over /dev/tcp; prints the full response.
# Subshell-scoped so a refused connect survives `set -e`.
http_get() {
  local port=$1 path=$2
  (
    exec 3<>"/dev/tcp/127.0.0.1/$port" || exit 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
    cat <&3
  ) 2>/dev/null
}

# Poll /readyz until 200: recovery complete, client gate open, peer links up.
# Generous attempt budget — an active chaos partition can legitimately hold
# a replication link (and thus readiness) down for a fault window.
ready_wait() {
  local port=$1 name=$2 attempts=${3:-200}
  for attempt in $(seq 1 "$attempts"); do
    if http_get "$port" /readyz | head -n 1 | grep -q ' 200 '; then
      return 0
    fi
    sleep 0.1
  done
  echo "chaos_soak: $name never answered 200 on /readyz" >&2
  return 1
}

config_header() {
  echo "dcs $DCS"
  echo "partitions $PARTS"
  echo "system $SYSTEM"
  echo "heartbeat_us 2000"
  echo "stabilization_us 10000"
}

# Client config: real addresses everywhere.
CFG="$OUT_DIR/cluster.cfg"
{
  config_header
  for dc in $(seq 0 $((DCS - 1))); do
    echo "node dc=$dc parts=0-$((PARTS - 1)) threads=$THREADS addr=127.0.0.1:$(real_port "$dc")"
  done
} > "$CFG"

# Per-DC server configs: peers behind the (self -> peer) proxy route.
for self in $(seq 0 $((DCS - 1))); do
  {
    config_header
    for dc in $(seq 0 $((DCS - 1))); do
      if [[ "$dc" == "$self" ]]; then
        addr="127.0.0.1:$(real_port "$dc")"
      else
        addr="127.0.0.1:$(proxy_port "$self" "$dc")"
      fi
      echo "node dc=$dc parts=0-$((PARTS - 1)) threads=$THREADS addr=$addr"
    done
  } > "$OUT_DIR/cluster_dc${self}.cfg"
done
echo "chaos_soak: client config:" && cat "$CFG"

PIDS=()
PROXY_PID=""
cleanup() {
  local status=$?
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  [[ -n "$PROXY_PID" ]] && kill "$PROXY_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  if [[ $status -ne 0 ]]; then
    echo "chaos_soak: FAILED (exit $status) — logs:" >&2
    tail -n 20 "$OUT_DIR"/poccd_*.log "$OUT_DIR"/chaosproxy.log >&2 || true
  fi
  exit "$status"
}
trap cleanup EXIT

# One proxy process carries all 6 directed routes; its fault schedule spans
# the whole soak so partitions recur seed-deterministically.
ROUTE_ARGS=()
for src in $(seq 0 $((DCS - 1))); do
  for dst in $(seq 0 $((DCS - 1))); do
    [[ "$src" == "$dst" ]] && continue
    ROUTE_ARGS+=(--route "$(proxy_port "$src" "$dst"):127.0.0.1:$(real_port "$dst"):$src:$dst")
  done
done
echo "chaos_soak: launching chaosproxy (seed $SEED, ${#ROUTE_ARGS[@]} args)"
"$BUILD_DIR/pocc_chaosproxy" --seed "$SEED" --dcs "$DCS" --parts "$PARTS" \
  --duration-s "$DURATION_S" \
  --delay-us "$DELAY_US" --jitter-us "$JITTER_US" --loss "$LOSS" \
  "${ROUTE_ARGS[@]}" > "$OUT_DIR/chaosproxy.log" 2>&1 &
PROXY_PID=$!

echo "chaos_soak: launching $DCS durable poccd processes (bounded admission)"
for dc in $(seq 0 $((DCS - 1))); do
  "$BUILD_DIR/poccd" --config "$OUT_DIR/cluster_dc${dc}.cfg" --dc "$dc" \
    --data-dir "$OUT_DIR/data_dc$dc" --max-inbox 4096 \
    --metrics-addr "127.0.0.1:$(metrics_port "$dc")" \
    > "$OUT_DIR/poccd_dc${dc}.log" 2>&1 &
  PIDS+=($!)
done

echo "chaos_soak: waiting for every DC to answer 200 on /readyz"
for dc in $(seq 0 $((DCS - 1))); do
  ready_wait "$(metrics_port "$dc")" "dc$dc" || exit 4
done

if ! kill -0 "$PROXY_PID" 2>/dev/null; then
  echo "chaos_soak: chaosproxy died at startup" >&2
  exit 4
fi
grep "plan_hash" "$OUT_DIR/chaosproxy.log" || true

echo "chaos_soak: resilient checked load for ${DURATION_S}s under wire chaos"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
  --threads "$CLIENTS" --connections 2 \
  --duration-s "$DURATION_S" --resilient --expect-disruption \
  --op-deadline-us "$OP_DEADLINE_US" --deadline-budget "$DEADLINE_BUDGET" \
  --out "$OUT_DIR/BENCH_chaos_soak.json" --client-base 1 \
  > "$OUT_DIR/loadgen_soak.log" 2>&1 &
LOAD_PID=$!

if [[ "$KILL" == "1" ]]; then
  VICTIM_DC=$((DCS - 1))
  sleep 3
  VICTIM_PID="${PIDS[$VICTIM_DC]}"
  echo "chaos_soak: kill -9 poccd dc$VICTIM_DC (pid $VICTIM_PID) mid-soak"
  kill -9 "$VICTIM_PID" 2>/dev/null || true
  wait "$VICTIM_PID" 2>/dev/null || true
  sleep 1
  echo "chaos_soak: restarting dc$VICTIM_DC on its data dir"
  "$BUILD_DIR/poccd" --config "$OUT_DIR/cluster_dc${VICTIM_DC}.cfg" \
    --dc "$VICTIM_DC" --data-dir "$OUT_DIR/data_dc$VICTIM_DC" \
    --max-inbox 4096 \
    --metrics-addr "127.0.0.1:$(metrics_port "$VICTIM_DC")" \
    >> "$OUT_DIR/poccd_dc${VICTIM_DC}.log" 2>&1 &
  PIDS[$VICTIM_DC]=$!
  ready_wait "$(metrics_port "$VICTIM_DC")" "restarted dc$VICTIM_DC" 300 || exit 7
  # Second batch of "recovered part" lines proves the WAL replay ran.
  for attempt in $(seq 1 50); do
    lines="$(grep -c "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" || true)"
    [[ "$lines" -ge $((2 * PARTS)) ]] && break
    if [[ $attempt -eq 50 ]]; then
      echo "chaos_soak: restarted dc$VICTIM_DC never reported a WAL replay" >&2
      exit 7
    fi
    sleep 0.1
  done
fi

if ! wait "$LOAD_PID"; then
  status=$?
  echo "chaos_soak: FAIL — resilient load exited $status (1=violation, 3=deadline budget)" >&2
  tail -n 30 "$OUT_DIR/loadgen_soak.log" >&2 || true
  exit 8
fi
cat "$OUT_DIR/BENCH_chaos_soak.json"

echo "chaos_soak: verifying every process survived"
for pid in "${PIDS[@]}" "$PROXY_PID"; do
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "chaos_soak: a process died during the soak" >&2
    exit 5
  fi
done

echo "chaos_soak: graceful shutdown"
for pid in "${PIDS[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
kill -TERM "$PROXY_PID" 2>/dev/null || true
for pid in "${PIDS[@]}"; do wait "$pid" || true; done
wait "$PROXY_PID" 2>/dev/null || true
PIDS=(); PROXY_PID=""
echo "chaos_soak: per-process exit stats:"
grep -h "exiting" "$OUT_DIR"/poccd_dc*.log || true
echo "chaos_soak: retry/dedupe accounting must show the resilience layer worked:"
grep -hoE "host_overloaded_replies=[0-9]+ host_deduped_requests=[0-9]+" \
  "$OUT_DIR"/poccd_dc*.log || true
echo "chaos_soak: PASS"
