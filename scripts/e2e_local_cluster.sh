#!/usr/bin/env bash
# End-to-end deployment check: launch a real 3-DC poccd cluster on localhost
# — ONE multi-partition process per DC (2 partitions on E2E_THREADS workers
# each, the group topology) — run the causal-consistency smoke, a checked
# serial load, and a pipelined high-connection load through pocc_loadgen,
# then tear everything down. Non-zero exit on any failure; server logs and
# the BENCH_tcp_loadgen.json artifact (the pipelined leg — the benchmark of
# record) are left in OUT_DIR (CI uploads them). When a committed baseline
# exists, the throughput/latency delta vs
# bench/baselines/BENCH_tcp_loadgen.json is printed (non-gating unless
# E2E_REQUIRE_SPEEDUP=1).
#
# With E2E_SIGNAL_LEG=1 (default) a chaos leg peppers every poccd with
# SIGUSR1 (whose no-op handler deliberately lacks SA_RESTART, so loop
# syscalls really take EINTR) throughout a pipelined load. poccd masks
# SIGUSR1 on its main thread, so each pepper lands on an event-loop thread.
# The leg brackets the storm with SIGUSR2 stats dumps and fails on ANY new
# server-side reconnect, plus asserts zero client-side reconnects in the
# loadgen JSON — EINTR must never tear a connection.
#
# With E2E_KILL_LEG=1 every poccd runs durable (--data-dir under OUT_DIR) and
# a crash-recovery leg follows the checked load: a loadgen runs in the
# background with --expect-disruption while one DC's poccd is kill -9'd
# mid-load and restarted on the same data dir — it must replay its WAL,
# rebuild the missed replication suffix from its peers, and rejoin; the
# disrupted load must finish with zero consistency violations.
#
# A tail-latency leg (E2E_TAIL_LEG=1, default) drives the paper's zipfian
# skew (theta 0.99) over a millions-of-keys keyspace with skewed value sizes
# and records p50/p99/p999 to BENCH_tail_latency.json; the delta vs
# bench/baselines/BENCH_tail_latency.json is printed non-gating.
#
# Every poccd serves /metrics + /healthz + /readyz on BASE_PORT+40+dc;
# startup and restart waits poll /readyz (recovery complete AND all peer
# links up) instead of just probing the listen socket, and a mid-load scrape
# of /metrics is saved to OUT_DIR as the observability artifact.
#
# A high-connection leg (E2E_HIGHCONN_LEG=1, default) raises the fd soft
# limit to the hard limit and drives a pipelined checked load over
# E2E_HIGHCONN_CONNECTIONS connection pools per DC (each pool holds one
# socket per partition) — the scale-push proof behind the io_uring backend:
# thousands of concurrent sockets through the sharded loops with full
# history checking, on whatever backend the run selects.
#
# E2E_EVENT_BACKEND (epoll|poll|uring, empty = platform default) selects the
# readiness backend for servers AND clients: poccd gets an explicit
# --event-backend flag, loadgen inherits it via POCC_EVENT_BACKEND. CI's
# uring matrix leg sets it after probing kernel support.
#
# usage: scripts/e2e_local_cluster.sh [BUILD_DIR] [OUT_DIR]
# env:   E2E_BASE_PORT (7450)  E2E_SYSTEM (pocc)  E2E_DURATION_S (5)
#        E2E_CLIENTS (8)  E2E_CONNECTIONS (2)  E2E_THREADS (2)
#        E2E_PIPELINE (4)  E2E_PIPE_CONNECTIONS (4x E2E_CONNECTIONS)
#        E2E_REQUIRE_SPEEDUP (0)  E2E_KILL_LEG (0)  E2E_KILL_DURATION_S (8)
#        E2E_SIGNAL_LEG (1)  E2E_SIGNAL_DURATION_S (4)
#        E2E_TAIL_LEG (1)  E2E_TAIL_DURATION_S (5)  E2E_TAIL_KEYS (1000000)
#        E2E_TAIL_VMAX (1024)  E2E_EVENT_BACKEND ()
#        E2E_HIGHCONN_LEG (1)  E2E_HIGHCONN_CONNECTIONS (128)
#        E2E_HIGHCONN_DURATION_S (4)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-e2e-out}"
BASE_PORT="${E2E_BASE_PORT:-7450}"
SYSTEM="${E2E_SYSTEM:-pocc}"
DURATION_S="${E2E_DURATION_S:-5}"
CLIENTS="${E2E_CLIENTS:-8}"
CONNECTIONS="${E2E_CONNECTIONS:-2}"
THREADS="${E2E_THREADS:-2}"
PIPELINE="${E2E_PIPELINE:-4}"
PIPE_CONNECTIONS="${E2E_PIPE_CONNECTIONS:-$((CONNECTIONS * 4))}"
REQUIRE_SPEEDUP="${E2E_REQUIRE_SPEEDUP:-0}"
KILL_LEG="${E2E_KILL_LEG:-0}"
KILL_DURATION_S="${E2E_KILL_DURATION_S:-8}"
SIGNAL_LEG="${E2E_SIGNAL_LEG:-1}"
SIGNAL_DURATION_S="${E2E_SIGNAL_DURATION_S:-4}"
TAIL_LEG="${E2E_TAIL_LEG:-1}"
TAIL_DURATION_S="${E2E_TAIL_DURATION_S:-5}"
TAIL_KEYS="${E2E_TAIL_KEYS:-1000000}"
TAIL_VMAX="${E2E_TAIL_VMAX:-1024}"
EVENT_BACKEND="${E2E_EVENT_BACKEND:-}"
HIGHCONN_LEG="${E2E_HIGHCONN_LEG:-1}"
HIGHCONN_CONNECTIONS="${E2E_HIGHCONN_CONNECTIONS:-128}"
HIGHCONN_DURATION_S="${E2E_HIGHCONN_DURATION_S:-4}"
DCS=3
PARTS=2
METRICS_BASE=$((BASE_PORT + 40))

# Raise the fd soft limit to the hard limit (best effort): the
# high-connection leg opens thousands of client sockets, and each poccd
# carries its share of inbound ones.
HARD_FD="$(ulimit -Hn)"
if [[ "$HARD_FD" != "unlimited" ]]; then
  ulimit -n "$HARD_FD" 2>/dev/null || true
fi
echo "e2e: fd limit $(ulimit -n) (hard $HARD_FD)"

# Backend selection: poccd takes the explicit flag; pocc_loadgen (and any
# poccd launched without the flag) inherits the env override.
BACKEND_ARGS=()
if [[ -n "$EVENT_BACKEND" ]]; then
  BACKEND_ARGS=(--event-backend "$EVENT_BACKEND")
  export POCC_EVENT_BACKEND="$EVENT_BACKEND"
  echo "e2e: event backend forced to $EVENT_BACKEND"
else
  echo "e2e: event backend: platform default"
fi

metrics_port() { echo $((METRICS_BASE + $1)); }

# GET http://127.0.0.1:PORT/PATH over /dev/tcp; prints the full response
# (status line + headers + body); rc != 0 when the connect fails. Runs in a
# subshell so a refused connect doesn't kill the script under `set -e`.
http_get() {
  local port=$1 path=$2
  (
    exec 3<>"/dev/tcp/127.0.0.1/$port" || exit 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
    cat <&3
  ) 2>/dev/null
}

http_body() { tr -d '\r' | sed '1,/^$/d'; }

# Poll /readyz until it answers 200 — the server-side readiness predicate
# (WAL recovery complete, client gate open, every peer link connected) —
# instead of merely probing that the listen socket accepts.
ready_wait() {
  local port=$1 name=$2 attempts=${3:-150}
  for attempt in $(seq 1 "$attempts"); do
    if http_get "$port" /readyz | head -n 1 | grep -q ' 200 '; then
      return 0
    fi
    sleep 0.1
  done
  echo "e2e: $name never answered 200 on /readyz" >&2
  return 1
}

# The kill leg needs durable state to recover from; without it poccd runs in
# its default non-durable mode (the pre-WAL deployment).
DATA_ARGS=()
data_args_for_dc() {
  DATA_ARGS=()
  if [[ "$KILL_LEG" == "1" ]]; then
    DATA_ARGS=(--data-dir "$OUT_DIR/data_dc$1")
  fi
}

for bin in poccd pocc_loadgen; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "e2e: $BUILD_DIR/$bin not built" >&2
    exit 3
  fi
done

mkdir -p "$OUT_DIR"
CFG="$OUT_DIR/cluster.cfg"
{
  echo "dcs $DCS"
  echo "partitions $PARTS"
  echo "system $SYSTEM"
  echo "heartbeat_us 2000"
  echo "stabilization_us 10000"
  port="$BASE_PORT"
  for dc in $(seq 0 $((DCS - 1))); do
    echo "node dc=$dc parts=0-$((PARTS - 1)) threads=$THREADS addr=127.0.0.1:$port"
    port=$((port + 1))
  done
} > "$CFG"
echo "e2e: cluster config:" && cat "$CFG"

PIDS=()
cleanup() {
  local status=$?
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [[ $status -ne 0 ]]; then
    echo "e2e: FAILED (exit $status) — server logs:" >&2
    tail -n 20 "$OUT_DIR"/poccd_*.log >&2 || true
  fi
  exit "$status"
}
trap cleanup EXIT

echo "e2e: launching $DCS poccd processes (one per DC, $PARTS partitions x $THREADS workers each)"
for dc in $(seq 0 $((DCS - 1))); do
  data_args_for_dc "$dc"
  "$BUILD_DIR/poccd" --config "$CFG" --dc "$dc" ${DATA_ARGS[@]+"${DATA_ARGS[@]}"} \
    ${BACKEND_ARGS[@]+"${BACKEND_ARGS[@]}"} \
    --metrics-addr "127.0.0.1:$(metrics_port "$dc")" \
    > "$OUT_DIR/poccd_dc${dc}.log" 2>&1 &
  PIDS+=($!)
done

echo "e2e: waiting for every DC to answer 200 on /readyz"
for dc in $(seq 0 $((DCS - 1))); do
  ready_wait "$(metrics_port "$dc")" "dc$dc" || exit 4
done
echo "e2e: server-reported event backends:"
grep -h "event backend" "$OUT_DIR"/poccd_dc*.log || true

echo "e2e: causal smoke (read-your-writes + WC-DEP chain across DCs)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode smoke --client-base 100000

# Each load leg gets a disjoint keyspace (--key-offset) and client-id range
# (--client-base): reading a version left by an earlier leg's clients would
# (correctly) fail the leg's full history replay against a live cluster.
echo "e2e: pipelined checked load ($CLIENTS sessions x pipeline $PIPELINE over $PIPE_CONNECTIONS connections per DC for ${DURATION_S}s)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
  --threads "$CLIENTS" --connections "$PIPE_CONNECTIONS" \
  --pipeline "$PIPELINE" --duration-s "$DURATION_S" \
  --out "$OUT_DIR/BENCH_tcp_loadgen.json" --client-base 200000 \
  > "$OUT_DIR/loadgen_pipelined.log" 2>&1 &
PIPE_LOAD_PID=$!

# Scrape /metrics from every DC mid-load — the observability artifact CI
# uploads — and assert the server-side op-latency histograms are live.
sleep 2
for dc in $(seq 0 $((DCS - 1))); do
  http_get "$(metrics_port "$dc")" /metrics | http_body \
    > "$OUT_DIR/metrics_dc${dc}.prom" || true
done
if ! grep -q '^pocc_server_op_us_bucket{op="get",le="' "$OUT_DIR/metrics_dc0.prom"; then
  echo "e2e: FAIL — mid-load /metrics scrape is missing pocc_server_op_us" >&2
  exit 10
fi
if ! grep -q '^pocc_transport_frames_in_total ' "$OUT_DIR/metrics_dc0.prom"; then
  echo "e2e: FAIL — mid-load /metrics scrape is missing transport counters" >&2
  exit 10
fi
echo "e2e: mid-load /metrics scrape OK ($(wc -l < "$OUT_DIR/metrics_dc0.prom") series lines from dc0)"

if ! wait "$PIPE_LOAD_PID"; then
  echo "e2e: FAIL — pipelined checked load failed" >&2
  tail -n 30 "$OUT_DIR/loadgen_pipelined.log" >&2 || true
  exit 10
fi
cat "$OUT_DIR/BENCH_tcp_loadgen.json"

echo "e2e: checked serial load ($CLIENTS client threads x $CONNECTIONS connections per DC for ${DURATION_S}s)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
  --threads "$CLIENTS" --connections "$CONNECTIONS" \
  --duration-s "$DURATION_S" --key-offset 100000000 \
  --out "$OUT_DIR/BENCH_tcp_loadgen_serial.json" --client-base 1
cat "$OUT_DIR/BENCH_tcp_loadgen_serial.json"

BASELINE="bench/baselines/BENCH_tcp_loadgen.json"
if [[ -f "$BASELINE" ]]; then
  echo "e2e: pipelined throughput/latency delta vs the committed baseline"
  scripts/perf_delta.sh "$OUT_DIR/BENCH_tcp_loadgen.json" "$BASELINE" || true
  if [[ "$REQUIRE_SPEEDUP" == "1" ]]; then
    cur="$(sed -n 's/.*"ops_per_sec":\([0-9][0-9.]*\).*/\1/p' "$OUT_DIR/BENCH_tcp_loadgen.json")"
    base="$(sed -n 's/.*"ops_per_sec":\([0-9][0-9.]*\).*/\1/p' "$BASELINE")"
    if ! awk -v c="$cur" -v b="$base" 'BEGIN { exit !(c >= b) }'; then
      echo "e2e: FAIL — pipelined throughput ($cur ops/s) regressed below the baseline ($base ops/s)" >&2
      exit 6
    fi
    echo "e2e: pipelined throughput holds the baseline ($cur >= $base ops/s)"
  fi
fi

if [[ "$HIGHCONN_LEG" == "1" ]]; then
  # One connection pool = one socket per partition per DC, so the cluster
  # carries DCS * HIGHCONN_CONNECTIONS * PARTS client sockets at once.
  HIGHCONN_SOCKETS=$((DCS * HIGHCONN_CONNECTIONS * PARTS))
  echo "e2e: high-connection leg — $HIGHCONN_CONNECTIONS pools/DC = $HIGHCONN_SOCKETS client sockets, pipelined $CLIENTS sessions x depth $PIPELINE, ${HIGHCONN_DURATION_S}s"
  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$HIGHCONN_CONNECTIONS" \
    --pipeline "$PIPELINE" --duration-s "$HIGHCONN_DURATION_S" \
    --key-offset 500000000 \
    --out "$OUT_DIR/BENCH_tcp_loadgen_highconn.json" --client-base 800000
  cat "$OUT_DIR/BENCH_tcp_loadgen_highconn.json"
  hc_failures="$(sed -n 's/.*"failures":\([0-9]*\).*/\1/p' "$OUT_DIR/BENCH_tcp_loadgen_highconn.json")"
  if [[ "$hc_failures" != "0" ]]; then
    echo "e2e: FAIL — high-connection leg reported $hc_failures op failures" >&2
    exit 11
  fi
  echo "e2e: high-connection leg passed — $HIGHCONN_SOCKETS sockets, zero failures, history checked"
fi

if [[ "$TAIL_LEG" == "1" ]]; then
  echo "e2e: tail-latency leg — zipfian theta=0.99 over $((TAIL_KEYS * PARTS)) keys/DC, value sizes 8..${TAIL_VMAX}B skewed, ${TAIL_DURATION_S}s"
  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$PIPE_CONNECTIONS" \
    --pipeline "$PIPELINE" --duration-s "$TAIL_DURATION_S" \
    --key-dist zipfian --theta 0.99 --keys-per-partition "$TAIL_KEYS" \
    --value-size 8 --value-size-max "$TAIL_VMAX" \
    --key-offset 400000000 \
    --out "$OUT_DIR/BENCH_tail_latency.json" --client-base 700000
  cat "$OUT_DIR/BENCH_tail_latency.json"
  TAIL_BASELINE="bench/baselines/BENCH_tail_latency.json"
  if [[ -f "$TAIL_BASELINE" ]]; then
    echo "e2e: tail-latency delta vs the committed baseline (non-gating)"
    scripts/perf_delta.sh "$OUT_DIR/BENCH_tail_latency.json" "$TAIL_BASELINE" || true
  fi
fi

if [[ "$SIGNAL_LEG" == "1" ]]; then
  echo "e2e: signal leg — SIGUSR1 storm on every poccd during a pipelined load (${SIGNAL_DURATION_S}s)"
  # Bracket the storm with SIGUSR2 stats dumps: the exit line alone cannot
  # distinguish storm-induced reconnects from benign startup dial races.
  for pid in "${PIDS[@]}"; do kill -USR2 "$pid" 2>/dev/null || true; done
  sleep 0.3
  PRE_RECONNECTS=()
  for dc in $(seq 0 $((DCS - 1))); do
    pre="$(grep "dc${dc}: stats" "$OUT_DIR/poccd_dc${dc}.log" | tail -n 1 \
      | sed -n 's/.*reconnects=\([0-9]*\).*/\1/p')"
    if [[ -z "$pre" ]]; then
      echo "e2e: FAIL — dc$dc never dumped stats on SIGUSR2" >&2
      exit 9
    fi
    PRE_RECONNECTS+=("$pre")
  done

  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$CONNECTIONS" \
    --pipeline "$PIPELINE" --duration-s "$SIGNAL_DURATION_S" \
    --key-offset 200000000 \
    --out "$OUT_DIR/BENCH_tcp_loadgen_signal.json" --client-base 300000 \
    > "$OUT_DIR/loadgen_signal.log" 2>&1 &
  SIG_LOAD_PID=$!
  while kill -0 "$SIG_LOAD_PID" 2>/dev/null; do
    for pid in "${PIDS[@]}"; do kill -USR1 "$pid" 2>/dev/null || true; done
    sleep 0.02
  done
  if ! wait "$SIG_LOAD_PID"; then
    echo "e2e: FAIL — checked load under the signal storm reported a violation" >&2
    tail -n 30 "$OUT_DIR/loadgen_signal.log" >&2 || true
    exit 9
  fi
  cat "$OUT_DIR/BENCH_tcp_loadgen_signal.json"

  for pid in "${PIDS[@]}"; do kill -USR2 "$pid" 2>/dev/null || true; done
  sleep 0.3
  for dc in $(seq 0 $((DCS - 1))); do
    post="$(grep "dc${dc}: stats" "$OUT_DIR/poccd_dc${dc}.log" | tail -n 1 \
      | sed -n 's/.*reconnects=\([0-9]*\).*/\1/p')"
    if [[ "$post" != "${PRE_RECONNECTS[$dc]}" ]]; then
      echo "e2e: FAIL — dc$dc reconnects went ${PRE_RECONNECTS[$dc]} -> ${post:-?} across the signal storm" >&2
      exit 9
    fi
  done
  client_reconnects="$(sed -n 's/.*"reconnects":\([0-9]*\).*/\1/p' "$OUT_DIR/BENCH_tcp_loadgen_signal.json")"
  if [[ "$client_reconnects" != "0" ]]; then
    echo "e2e: FAIL — loadgen reported $client_reconnects client reconnects under the signal storm" >&2
    exit 9
  fi
  echo "e2e: signal leg passed — zero spurious reconnects (server and client) under the SIGUSR1 storm"
fi

if [[ "$KILL_LEG" == "1" ]]; then
  VICTIM_DC=$((DCS - 1))
  echo "e2e: kill leg — disrupted load for ${KILL_DURATION_S}s while dc$VICTIM_DC is kill -9'd and restarted"
  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$CONNECTIONS" \
    --duration-s "$KILL_DURATION_S" --expect-disruption \
    --key-offset 300000000 \
    --out "$OUT_DIR/BENCH_tcp_loadgen_kill.json" --client-base 500000 \
    > "$OUT_DIR/loadgen_kill.log" 2>&1 &
  LOAD_PID=$!

  sleep 2
  VICTIM_PID="${PIDS[$VICTIM_DC]}"
  echo "e2e: kill -9 poccd dc$VICTIM_DC (pid $VICTIM_PID) mid-load"
  kill -9 "$VICTIM_PID" 2>/dev/null || true
  wait "$VICTIM_PID" 2>/dev/null || true

  sleep 1
  echo "e2e: restarting dc$VICTIM_DC on its data dir (WAL replay + peer recovery)"
  data_args_for_dc "$VICTIM_DC"
  "$BUILD_DIR/poccd" --config "$CFG" --dc "$VICTIM_DC" "${DATA_ARGS[@]}" \
    ${BACKEND_ARGS[@]+"${BACKEND_ARGS[@]}"} \
    --metrics-addr "127.0.0.1:$(metrics_port "$VICTIM_DC")" \
    >> "$OUT_DIR/poccd_dc${VICTIM_DC}.log" 2>&1 &
  PIDS[$VICTIM_DC]=$!

  # /readyz only answers 200 once the WAL replay finished, the parked client
  # gate reopened AND every peer link re-dialed — the full rejoin, not just a
  # listening socket.
  ready_wait "$(metrics_port "$VICTIM_DC")" "restarted dc$VICTIM_DC" 150 || exit 7

  # The first launch also prints PARTS "recovered part" lines (empty dir), so
  # the restart is proven by a second batch — and readiness can precede the
  # main thread printing them, hence the poll.
  for attempt in $(seq 1 50); do
    lines="$(grep -c "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" || true)"
    [[ "$lines" -ge $((2 * PARTS)) ]] && break
    if [[ $attempt -eq 50 ]]; then
      echo "e2e: FAIL — restarted dc$VICTIM_DC never reported a WAL replay" >&2
      exit 7
    fi
    sleep 0.1
  done
  grep "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" | tail -n "$PARTS"
  if ! grep "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" | tail -n "$PARTS" \
      | grep -qv "log_versions=0 "; then
    echo "e2e: FAIL — restarted dc$VICTIM_DC replayed zero versions" >&2
    exit 7
  fi

  if ! wait "$LOAD_PID"; then
    echo "e2e: FAIL — load across the kill -9 + recovery reported a violation (or completed no work)" >&2
    tail -n 30 "$OUT_DIR/loadgen_kill.log" >&2 || true
    exit 8
  fi
  cat "$OUT_DIR/BENCH_tcp_loadgen_kill.json"
  echo "e2e: kill leg passed — zero causal violations across crash + WAL replay + peer rejoin"
fi

echo "e2e: verifying every poccd survived the run"
for pid in "${PIDS[@]}"; do
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "e2e: a poccd process died during the run" >&2
    exit 5
  fi
done

echo "e2e: graceful shutdown"
for pid in "${PIDS[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" || true
done
PIDS=()
echo "e2e: aggregated exit stats (per process):"
grep -h "exiting" "$OUT_DIR"/poccd_dc*.log || true
echo "e2e: PASS"
