#!/usr/bin/env bash
# End-to-end deployment check: launch a real 3-DC poccd cluster on localhost
# — ONE multi-partition process per DC (2 partitions on E2E_THREADS workers
# each, the group topology) — run the causal-consistency smoke, a checked
# serial load, and a pipelined high-connection load through pocc_loadgen,
# then tear everything down. Non-zero exit on any failure; server logs and
# the BENCH_tcp_loadgen.json artifact (the pipelined leg — the benchmark of
# record) are left in OUT_DIR (CI uploads them). When a committed baseline
# exists, the throughput/latency delta vs
# bench/baselines/BENCH_tcp_loadgen.json is printed (non-gating unless
# E2E_REQUIRE_SPEEDUP=1).
#
# With E2E_SIGNAL_LEG=1 (default) a chaos leg peppers every poccd with
# SIGUSR1 (whose no-op handler deliberately lacks SA_RESTART, so loop
# syscalls really take EINTR) throughout a pipelined load. poccd masks
# SIGUSR1 on its main thread, so each pepper lands on an event-loop thread.
# The leg brackets the storm with SIGUSR2 stats dumps and fails on ANY new
# server-side reconnect, plus asserts zero client-side reconnects in the
# loadgen JSON — EINTR must never tear a connection.
#
# With E2E_KILL_LEG=1 every poccd runs durable (--data-dir under OUT_DIR) and
# a crash-recovery leg follows the checked load: a loadgen runs in the
# background with --expect-disruption while one DC's poccd is kill -9'd
# mid-load and restarted on the same data dir — it must replay its WAL,
# rebuild the missed replication suffix from its peers, and rejoin; the
# disrupted load must finish with zero consistency violations.
#
# usage: scripts/e2e_local_cluster.sh [BUILD_DIR] [OUT_DIR]
# env:   E2E_BASE_PORT (7450)  E2E_SYSTEM (pocc)  E2E_DURATION_S (5)
#        E2E_CLIENTS (8)  E2E_CONNECTIONS (2)  E2E_THREADS (2)
#        E2E_PIPELINE (4)  E2E_PIPE_CONNECTIONS (4x E2E_CONNECTIONS)
#        E2E_REQUIRE_SPEEDUP (0)  E2E_KILL_LEG (0)  E2E_KILL_DURATION_S (8)
#        E2E_SIGNAL_LEG (1)  E2E_SIGNAL_DURATION_S (4)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-e2e-out}"
BASE_PORT="${E2E_BASE_PORT:-7450}"
SYSTEM="${E2E_SYSTEM:-pocc}"
DURATION_S="${E2E_DURATION_S:-5}"
CLIENTS="${E2E_CLIENTS:-8}"
CONNECTIONS="${E2E_CONNECTIONS:-2}"
THREADS="${E2E_THREADS:-2}"
PIPELINE="${E2E_PIPELINE:-4}"
PIPE_CONNECTIONS="${E2E_PIPE_CONNECTIONS:-$((CONNECTIONS * 4))}"
REQUIRE_SPEEDUP="${E2E_REQUIRE_SPEEDUP:-0}"
KILL_LEG="${E2E_KILL_LEG:-0}"
KILL_DURATION_S="${E2E_KILL_DURATION_S:-8}"
SIGNAL_LEG="${E2E_SIGNAL_LEG:-1}"
SIGNAL_DURATION_S="${E2E_SIGNAL_DURATION_S:-4}"
DCS=3
PARTS=2

# The kill leg needs durable state to recover from; without it poccd runs in
# its default non-durable mode (the pre-WAL deployment).
DATA_ARGS=()
data_args_for_dc() {
  DATA_ARGS=()
  if [[ "$KILL_LEG" == "1" ]]; then
    DATA_ARGS=(--data-dir "$OUT_DIR/data_dc$1")
  fi
}

for bin in poccd pocc_loadgen; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "e2e: $BUILD_DIR/$bin not built" >&2
    exit 3
  fi
done

mkdir -p "$OUT_DIR"
CFG="$OUT_DIR/cluster.cfg"
{
  echo "dcs $DCS"
  echo "partitions $PARTS"
  echo "system $SYSTEM"
  echo "heartbeat_us 2000"
  echo "stabilization_us 10000"
  port="$BASE_PORT"
  for dc in $(seq 0 $((DCS - 1))); do
    echo "node dc=$dc parts=0-$((PARTS - 1)) threads=$THREADS addr=127.0.0.1:$port"
    port=$((port + 1))
  done
} > "$CFG"
echo "e2e: cluster config:" && cat "$CFG"

PIDS=()
cleanup() {
  local status=$?
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  if [[ $status -ne 0 ]]; then
    echo "e2e: FAILED (exit $status) — server logs:" >&2
    tail -n 20 "$OUT_DIR"/poccd_*.log >&2 || true
  fi
  exit "$status"
}
trap cleanup EXIT

echo "e2e: launching $DCS poccd processes (one per DC, $PARTS partitions x $THREADS workers each)"
for dc in $(seq 0 $((DCS - 1))); do
  data_args_for_dc "$dc"
  "$BUILD_DIR/poccd" --config "$CFG" --dc "$dc" ${DATA_ARGS[@]+"${DATA_ARGS[@]}"} \
    > "$OUT_DIR/poccd_dc${dc}.log" 2>&1 &
  PIDS+=($!)
done

echo "e2e: waiting for all node ports to listen"
for attempt in $(seq 1 100); do
  up=1
  for offset in $(seq 0 $((DCS - 1))); do
    port=$((BASE_PORT + offset))
    if ! (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      up=0
      break
    fi
    exec 3>&- || true
  done
  [[ $up -eq 1 ]] && break
  if [[ $attempt -eq 100 ]]; then
    echo "e2e: cluster never came up" >&2
    exit 4
  fi
  sleep 0.1
done

echo "e2e: causal smoke (read-your-writes + WC-DEP chain across DCs)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode smoke --client-base 100000

# Each load leg gets a disjoint keyspace (--key-offset) and client-id range
# (--client-base): reading a version left by an earlier leg's clients would
# (correctly) fail the leg's full history replay against a live cluster.
echo "e2e: pipelined checked load ($CLIENTS sessions x pipeline $PIPELINE over $PIPE_CONNECTIONS connections per DC for ${DURATION_S}s)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
  --threads "$CLIENTS" --connections "$PIPE_CONNECTIONS" \
  --pipeline "$PIPELINE" --duration-s "$DURATION_S" \
  --out "$OUT_DIR/BENCH_tcp_loadgen.json" --client-base 200000
cat "$OUT_DIR/BENCH_tcp_loadgen.json"

echo "e2e: checked serial load ($CLIENTS client threads x $CONNECTIONS connections per DC for ${DURATION_S}s)"
"$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
  --threads "$CLIENTS" --connections "$CONNECTIONS" \
  --duration-s "$DURATION_S" --key-offset 100000000 \
  --out "$OUT_DIR/BENCH_tcp_loadgen_serial.json" --client-base 1
cat "$OUT_DIR/BENCH_tcp_loadgen_serial.json"

BASELINE="bench/baselines/BENCH_tcp_loadgen.json"
if [[ -f "$BASELINE" ]]; then
  echo "e2e: pipelined throughput/latency delta vs the committed baseline"
  scripts/perf_delta.sh "$OUT_DIR/BENCH_tcp_loadgen.json" "$BASELINE" || true
  if [[ "$REQUIRE_SPEEDUP" == "1" ]]; then
    cur="$(sed -n 's/.*"ops_per_sec":\([0-9][0-9.]*\).*/\1/p' "$OUT_DIR/BENCH_tcp_loadgen.json")"
    base="$(sed -n 's/.*"ops_per_sec":\([0-9][0-9.]*\).*/\1/p' "$BASELINE")"
    if ! awk -v c="$cur" -v b="$base" 'BEGIN { exit !(c >= b) }'; then
      echo "e2e: FAIL — pipelined throughput ($cur ops/s) regressed below the baseline ($base ops/s)" >&2
      exit 6
    fi
    echo "e2e: pipelined throughput holds the baseline ($cur >= $base ops/s)"
  fi
fi

if [[ "$SIGNAL_LEG" == "1" ]]; then
  echo "e2e: signal leg — SIGUSR1 storm on every poccd during a pipelined load (${SIGNAL_DURATION_S}s)"
  # Bracket the storm with SIGUSR2 stats dumps: the exit line alone cannot
  # distinguish storm-induced reconnects from benign startup dial races.
  for pid in "${PIDS[@]}"; do kill -USR2 "$pid" 2>/dev/null || true; done
  sleep 0.3
  PRE_RECONNECTS=()
  for dc in $(seq 0 $((DCS - 1))); do
    pre="$(grep "dc${dc}: stats" "$OUT_DIR/poccd_dc${dc}.log" | tail -n 1 \
      | sed -n 's/.*reconnects=\([0-9]*\).*/\1/p')"
    if [[ -z "$pre" ]]; then
      echo "e2e: FAIL — dc$dc never dumped stats on SIGUSR2" >&2
      exit 9
    fi
    PRE_RECONNECTS+=("$pre")
  done

  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$CONNECTIONS" \
    --pipeline "$PIPELINE" --duration-s "$SIGNAL_DURATION_S" \
    --key-offset 200000000 \
    --out "$OUT_DIR/BENCH_tcp_loadgen_signal.json" --client-base 300000 \
    > "$OUT_DIR/loadgen_signal.log" 2>&1 &
  SIG_LOAD_PID=$!
  while kill -0 "$SIG_LOAD_PID" 2>/dev/null; do
    for pid in "${PIDS[@]}"; do kill -USR1 "$pid" 2>/dev/null || true; done
    sleep 0.02
  done
  if ! wait "$SIG_LOAD_PID"; then
    echo "e2e: FAIL — checked load under the signal storm reported a violation" >&2
    tail -n 30 "$OUT_DIR/loadgen_signal.log" >&2 || true
    exit 9
  fi
  cat "$OUT_DIR/BENCH_tcp_loadgen_signal.json"

  for pid in "${PIDS[@]}"; do kill -USR2 "$pid" 2>/dev/null || true; done
  sleep 0.3
  for dc in $(seq 0 $((DCS - 1))); do
    post="$(grep "dc${dc}: stats" "$OUT_DIR/poccd_dc${dc}.log" | tail -n 1 \
      | sed -n 's/.*reconnects=\([0-9]*\).*/\1/p')"
    if [[ "$post" != "${PRE_RECONNECTS[$dc]}" ]]; then
      echo "e2e: FAIL — dc$dc reconnects went ${PRE_RECONNECTS[$dc]} -> ${post:-?} across the signal storm" >&2
      exit 9
    fi
  done
  client_reconnects="$(sed -n 's/.*"reconnects":\([0-9]*\).*/\1/p' "$OUT_DIR/BENCH_tcp_loadgen_signal.json")"
  if [[ "$client_reconnects" != "0" ]]; then
    echo "e2e: FAIL — loadgen reported $client_reconnects client reconnects under the signal storm" >&2
    exit 9
  fi
  echo "e2e: signal leg passed — zero spurious reconnects (server and client) under the SIGUSR1 storm"
fi

if [[ "$KILL_LEG" == "1" ]]; then
  VICTIM_DC=$((DCS - 1))
  echo "e2e: kill leg — disrupted load for ${KILL_DURATION_S}s while dc$VICTIM_DC is kill -9'd and restarted"
  "$BUILD_DIR/pocc_loadgen" --config "$CFG" --mode load \
    --threads "$CLIENTS" --connections "$CONNECTIONS" \
    --duration-s "$KILL_DURATION_S" --expect-disruption \
    --key-offset 300000000 \
    --out "$OUT_DIR/BENCH_tcp_loadgen_kill.json" --client-base 500000 \
    > "$OUT_DIR/loadgen_kill.log" 2>&1 &
  LOAD_PID=$!

  sleep 2
  VICTIM_PID="${PIDS[$VICTIM_DC]}"
  echo "e2e: kill -9 poccd dc$VICTIM_DC (pid $VICTIM_PID) mid-load"
  kill -9 "$VICTIM_PID" 2>/dev/null || true
  wait "$VICTIM_PID" 2>/dev/null || true

  sleep 1
  echo "e2e: restarting dc$VICTIM_DC on its data dir (WAL replay + peer recovery)"
  data_args_for_dc "$VICTIM_DC"
  "$BUILD_DIR/poccd" --config "$CFG" --dc "$VICTIM_DC" "${DATA_ARGS[@]}" \
    >> "$OUT_DIR/poccd_dc${VICTIM_DC}.log" 2>&1 &
  PIDS[$VICTIM_DC]=$!

  port=$((BASE_PORT + VICTIM_DC))
  for attempt in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- || true
      break
    fi
    if [[ $attempt -eq 100 ]]; then
      echo "e2e: dc$VICTIM_DC never listened again after restart" >&2
      exit 7
    fi
    sleep 0.1
  done

# The first launch also prints PARTS "recovered part" lines (empty dir), so
  # the restart is proven by a second batch — and the port starts listening
  # before the main thread prints them, hence the poll.
  for attempt in $(seq 1 50); do
    lines="$(grep -c "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" || true)"
    [[ "$lines" -ge $((2 * PARTS)) ]] && break
    if [[ $attempt -eq 50 ]]; then
      echo "e2e: FAIL — restarted dc$VICTIM_DC never reported a WAL replay" >&2
      exit 7
    fi
    sleep 0.1
  done
  grep "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" | tail -n "$PARTS"
  if ! grep "recovered part" "$OUT_DIR/poccd_dc${VICTIM_DC}.log" | tail -n "$PARTS" \
      | grep -qv "log_versions=0 "; then
    echo "e2e: FAIL — restarted dc$VICTIM_DC replayed zero versions" >&2
    exit 7
  fi

  if ! wait "$LOAD_PID"; then
    echo "e2e: FAIL — load across the kill -9 + recovery reported a violation (or completed no work)" >&2
    tail -n 30 "$OUT_DIR/loadgen_kill.log" >&2 || true
    exit 8
  fi
  cat "$OUT_DIR/BENCH_tcp_loadgen_kill.json"
  echo "e2e: kill leg passed — zero causal violations across crash + WAL replay + peer rejoin"
fi

echo "e2e: verifying every poccd survived the run"
for pid in "${PIDS[@]}"; do
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "e2e: a poccd process died during the run" >&2
    exit 5
  fi
done

echo "e2e: graceful shutdown"
for pid in "${PIDS[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" || true
done
PIDS=()
echo "e2e: aggregated exit stats (per process):"
grep -h "exiting" "$OUT_DIR"/poccd_dc*.log || true
echo "e2e: PASS"
