#!/usr/bin/env bash
# check_syscalls.sh — grep-lint for raw interruptible syscalls.
#
# History: a signal landing mid-::recv made the transport treat EINTR as a
# fatal socket error and tear the connection down (and ::poll's return value
# was consumed unchecked, acting on unspecified revents). The fix audited
# every raw syscall site and confined them to a small set of files whose
# read/write/accept/wait loops all retry on EINTR.
#
# This lint keeps it that way:
#   1. any *.cpp under src/ or tools/ calling an interruptible socket/pipe
#      syscall must be one of the audited files below;
#   2. every audited file must still contain an EINTR branch (so the
#      hardening cannot be refactored away silently).
#
# New call sites are fine — handle EINTR, then add the file to AUDITED.
#
# Pattern notes: bare `read(`/`write(`/`send(`/`connect(` are too generic to
# grep for (the codebase has methods of those names), so unqualified
# matching covers only the unambiguous syscall names and the `::`-qualified
# form covers the rest. That is a tripwire, not a proof — code review still
# owns the long tail.
set -euo pipefail
cd "$(dirname "$0")/.."

AUDITED=(
  src/net/event_loop.cpp
  src/net/http_server.cpp
  src/net/tcp_transport.cpp
  src/wal/partition_wal.cpp
  tools/pocc_chaosproxy.cpp
)

UNQUALIFIED='(^|[^_[:alnum:]>.:])(poll|epoll_wait|epoll_pwait|recvmsg|sendmsg|writev|recv|accept4|accept)[[:space:]]*\('
QUALIFIED='(^|[^_[:alnum:]])::[[:space:]]*(poll|recvmsg|recv|sendmsg|send|writev|accept|read|write|connect)[[:space:]]*\('
# io_uring is invoked through raw ::syscall(__NR_io_uring_*) (no liburing in
# the build); io_uring_enter blocks in the wait phase and returns EINTR —
# and can ALSO be interrupted after a partial submit, returning the consumed
# SQE count instead — so its call sites carry the same audit duty.
RAW_URING='__NR_io_uring_(setup|enter|register)'
PATTERN="${UNQUALIFIED}|${QUALIFIED}|${RAW_URING}"

fail=0

while IFS= read -r f; do
  allowed=0
  for a in "${AUDITED[@]}"; do
    [[ "$f" == "$a" ]] && allowed=1
  done
  if [[ "$allowed" == 0 ]]; then
    echo "check_syscalls: $f calls a raw interruptible syscall but is not an audited EINTR-hardened site:" >&2
    grep -nE "$PATTERN" "$f" >&2
    fail=1
  fi
done < <(grep -rlE "$PATTERN" --include='*.cpp' src tools || true)

for f in "${AUDITED[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "check_syscalls: audited file $f is gone — update AUDITED in $0" >&2
    fail=1
    continue
  fi
  if ! grep -q 'EINTR' "$f"; then
    echo "check_syscalls: audited file $f no longer handles EINTR" >&2
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "check_syscalls: FAIL — see scripts/check_syscalls.sh for the rules" >&2
  exit 1
fi
echo "check_syscalls: OK (${#AUDITED[@]} audited sites, no strays)"
