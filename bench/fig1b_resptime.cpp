// Figure 1b — "Avg. resp. time on 32 partitions with a 32:1 GET:PUT
// workload" — average operation response time as a function of achieved
// throughput, swept by increasing the number of closed-loop clients.
//
// Paper shape: POCC achieves slightly lower response time than Cure* before
// saturation (it never traverses version chains nor runs stabilization);
// under very high load POCC is slightly worse because operations block.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 1b",
               "avg response time vs throughput (32:1 GET:PUT)", scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 32;

  print_row({"clients/part", "system", "Mops/s", "avg resp (ms)",
             "p99 (ms)", "cpu util"});
  print_csv_header("fig1b", {"clients_per_partition", "system", "mops",
                             "avg_resp_ms", "p99_resp_ms", "cpu_util"});
  for (auto system : {cluster::SystemKind::kCure, cluster::SystemKind::kPocc}) {
    for (std::uint32_t clients : scale.client_sweep()) {
      const auto cfg =
          paper_config(system, scale.partitions(), /*seed=*/2000 + clients);
      const auto m = run_point(cfg, wl, clients, scale.warmup_us(),
                               scale.measure_us());
      const double avg_ms = m.client_ops.avg_latency_us() / 1e3;
      stats::Histogram all;
      all.merge(m.client_ops.get_latency_us);
      all.merge(m.client_ops.put_latency_us);
      const double p99_ms =
          static_cast<double>(all.percentile(99)) / 1e3;
      const char* name = cluster::system_name(system);
      print_row({std::to_string(clients), name,
                 fmt_mops(m.throughput_ops_per_sec), fmt(avg_ms, 4),
                 fmt(p99_ms, 4), fmt(m.avg_cpu_utilization, 3)});
      print_csv_row({std::to_string(clients), name,
                     fmt_mops(m.throughput_ops_per_sec), fmt(avg_ms, 4),
                     fmt(p99_ms, 4), fmt(m.avg_cpu_utilization, 3)});
    }
  }
  std::printf(
      "\nExpected shape (paper): POCC's response time sits slightly below\n"
      "Cure*'s until the saturation knee, then slightly above it.\n");
  return 0;
}
