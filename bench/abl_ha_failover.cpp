// Ablation — HA-POCC failover (§III-B, §IV-C; the paper leaves the
// quantitative evaluation of partitions to future work — this harness
// provides it on the simulated deployment).
//
// Timeline: run a Get-Put workload, inject a DC0–DC1 partition, observe
// sessions falling back to the pessimistic protocol, heal, observe
// promotion. Reported per 100 ms window: completed operations and cumulative
// session fallbacks, for plain POCC (blocks, no fallback) vs HA-POCC.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

namespace {

struct Timeline {
  std::vector<double> ops_per_window;  // completed ops per 100 ms window
  std::uint64_t fallbacks = 0;
  std::uint64_t blocked_at_end = 0;
};

Timeline run_timeline(cluster::SystemKind system, const Scale& scale) {
  auto cfg = paper_config(system, scale.partitions(), /*seed=*/42);
  cfg.protocol.block_timeout_us = 150'000;
  cluster::SimCluster sim_cluster(cfg);
  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 4;
  wl.think_time_us = 10'000;
  sim_cluster.add_workload_clients(16, wl);

  constexpr Duration kWindow = 100'000;
  constexpr int kWarmupWindows = 4;
  constexpr int kPartitionAt = 8;    // window index when the partition starts
  constexpr int kHealAt = 16;        // window index when it heals
  constexpr int kTotalWindows = 24;

  Timeline t;
  std::uint64_t prev_ops = 0;
  sim_cluster.run_for(kWarmupWindows * kWindow);
  sim_cluster.begin_measurement();
  for (int w = 0; w < kTotalWindows; ++w) {
    if (w == kPartitionAt) sim_cluster.partition_dcs(0, 1);
    if (w == kHealAt) sim_cluster.heal_dcs(0, 1);
    sim_cluster.run_for(kWindow);
    std::uint64_t ops = 0;
    for (const auto& c : sim_cluster.clients()) ops += c->completed_ops();
    t.ops_per_window.push_back(static_cast<double>(ops - prev_ops));
    prev_ops = ops;
  }
  const auto m = sim_cluster.end_measurement();
  t.fallbacks = m.session_fallbacks;
  t.blocked_at_end = sim_cluster.total_parked_requests();
  sim_cluster.stop_clients();
  return t;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: HA failover",
               "availability through a partition: POCC vs HA-POCC", scale);
  std::printf("partition injected at window 8 (DC0-DC1), healed at 16; "
              "100 ms windows\n\n");

  const Timeline pocc = run_timeline(cluster::SystemKind::kPocc, scale);
  const Timeline ha = run_timeline(cluster::SystemKind::kHaPocc, scale);

  print_row({"window", "POCC ops", "HA-POCC ops", "phase"});
  print_csv_header("abl_ha_failover",
                   {"window", "pocc_ops", "ha_pocc_ops", "phase"});
  for (std::size_t w = 0; w < pocc.ops_per_window.size(); ++w) {
    const char* phase = w < 8 ? "healthy" : (w < 16 ? "PARTITION" : "healed");
    print_row({std::to_string(w), fmt(pocc.ops_per_window[w], 5),
               fmt(ha.ops_per_window[w], 5), phase});
    print_csv_row({std::to_string(w), fmt(pocc.ops_per_window[w], 5),
                   fmt(ha.ops_per_window[w], 5), phase});
  }
  std::printf("\nsession fallbacks: POCC=%llu HA-POCC=%llu\n",
              static_cast<unsigned long long>(pocc.fallbacks),
              static_cast<unsigned long long>(ha.fallbacks));
  std::printf("requests still blocked at end: POCC=%llu HA-POCC=%llu\n",
              static_cast<unsigned long long>(pocc.blocked_at_end),
              static_cast<unsigned long long>(ha.blocked_at_end));
  std::printf(
      "\nExpected: plain POCC accumulates blocked requests during the\n"
      "partition (those clients stall); HA-POCC closes blocked sessions,\n"
      "falls back to pessimistic mode, keeps serving, and recovers fully\n"
      "after the heal.\n");
  return 0;
}
