// Ablation — physical clock skew.
//
// POCC's correctness never depends on synchronization precision (§IV), but
// performance does: dependency vectors carry physical timestamps, so skew
// inflates the PUT wait (Alg. 2 line 7) and produces spurious dependency
// stalls. This sweep quantifies that sensitivity.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: clock skew",
               "POCC blocking and latency vs clock offset sigma", scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 8;
  wl.think_time_us = 5'000;

  const double sweep_us[] = {0.0, 500.0, 1'000.0, 5'000.0, 10'000.0,
                             50'000.0};
  print_row({"skew σ (ms)", "Mops/s", "block prob", "avg block (ms)",
             "avg resp (ms)"});
  print_csv_header("abl_clock_skew", {"sigma_ms", "mops", "block_prob",
                                      "avg_block_ms", "avg_resp_ms"});
  for (double sigma : sweep_us) {
    auto cfg = paper_config(cluster::SystemKind::kPocc, scale.partitions(),
                            /*seed=*/9200 + static_cast<std::uint64_t>(sigma));
    cfg.clock.offset_sigma_us = sigma;     // intra-DC (LAN) error
    cfg.clock.dc_offset_sigma_us = sigma;  // cross-DC (WAN) error
    const auto m = run_point(cfg, wl, 64, scale.warmup_us(),
                             scale.measure_us());
    print_row({fmt(sigma / 1e3, 3), fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
               fmt(m.client_ops.avg_latency_us() / 1e3, 4)});
    print_csv_row({fmt(sigma / 1e3, 3), fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
                   fmt(m.client_ops.avg_latency_us() / 1e3, 4)});
  }
  std::printf(
      "\nExpected: blocking probability and PUT waits grow with skew, while\n"
      "consistency is never violated (see the property test suite).\n");
  return 0;
}
