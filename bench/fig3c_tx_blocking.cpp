// Figure 3c — "Blocking behavior in POCC with different # clients per
// partition" (RO-TX(half)+PUT workload, §V-C).
//
// Paper shape: highly non-linear. Blocking probability peaks around the
// throughput peak; blocking time first *decreases* with load (more updates =
// faster unblocking) and then grows sharply under overload, when update and
// heartbeat processing itself is delayed by CPU contention.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 3c",
               "POCC blocking probability/time vs clients/partition", scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.pattern = workload::Pattern::kTxPut;
  wl.tx_partitions = scale.partitions() / 2;

  print_row({"clients/part", "Mops/s", "stall prob", "block prob(>1ms)",
             "avg block (ms)", "p99 block (ms)"});
  print_csv_header("fig3c", {"clients_per_partition", "mops", "stall_prob",
                             "macro_block_prob", "avg_block_ms",
                             "p99_block_ms"});
  for (std::uint32_t clients : scale.client_sweep()) {
    const auto cfg = paper_config(cluster::SystemKind::kPocc,
                                  scale.partitions(), /*seed=*/7000 + clients);
    const auto m =
        run_point(cfg, wl, clients, scale.warmup_us(), scale.measure_us());
    print_row({std::to_string(clients), fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.macro_blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
               fmt(static_cast<double>(
                       m.blocking.blocked_time_us.percentile(99)) /
                       1e3,
                   4)});
    print_csv_row({std::to_string(clients),
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.macro_blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
                   fmt(static_cast<double>(
                           m.blocking.blocked_time_us.percentile(99)) /
                           1e3,
                       4)});
  }
  std::printf(
      "\nExpected shape (paper): blocking probability peaks near the\n"
      "throughput peak; blocking time dips then grows under overload.\n"
      "\"stall prob\" counts any parked request (including the sub-ms VV-skew\n"
      "stalls inherent to POCC's fresh snapshots); the >1ms series is the\n"
      "granularity the paper's testbed measurement would register.\n");
  return 0;
}
