// Ablation — client think time (§V-A).
//
// The paper sets a 25 ms think time and observes that it "lowers the chances
// that a request blocks when using OCC, because it gives time to servers to
// receive potentially missing client dependencies". This sweep makes that
// relationship explicit: the shorter the think time, the more likely a client
// outruns replication and stalls.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: think time",
               "POCC blocking vs client think time", scale);

  const Duration sweep[] = {1'000, 2'000, 5'000, 10'000, 25'000, 100'000};
  print_row({"think (ms)", "Mops/s", "block prob", "avg block (ms)"});
  print_csv_header("abl_think_time",
                   {"think_ms", "mops", "block_prob", "avg_block_ms"});
  for (Duration think : sweep) {
    workload::WorkloadConfig wl = paper_workload();
    wl.gets_per_put = 8;
    wl.think_time_us = think;
    auto cfg = paper_config(cluster::SystemKind::kPocc, scale.partitions(),
                            /*seed=*/9300 + think);
    const auto m = run_point(cfg, wl, 32, scale.warmup_us(),
                             scale.measure_us());
    print_row({fmt(static_cast<double>(think) / 1e3, 3),
               fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4)});
    print_csv_row({fmt(static_cast<double>(think) / 1e3, 3),
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4)});
  }
  std::printf(
      "\nExpected: blocking probability decreases as think time grows; at\n"
      "25 ms (the paper's setting) blocking is rare.\n");
  return 0;
}
