// Figure 3b — "Throughput and avg. resp. time with different # clients per
// partition" (RO-TX over half the partitions + random PUT, §V-C).
//
// Paper shape: both systems reach a similar maximum throughput, but POCC's
// throughput *drops* past its peak (blocking-driven RO-TX latency surge)
// while Cure*'s plateaus; Cure*'s RO-TX response time rises steadily.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 3b",
               "throughput & RO-TX response time vs clients/partition",
               scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.pattern = workload::Pattern::kTxPut;
  wl.tx_partitions = scale.partitions() / 2;

  print_row({"clients/part", "system", "Mops/s", "tx resp (ms)",
             "p99 tx (ms)"});
  print_csv_header("fig3b", {"clients_per_partition", "system", "mops",
                             "tx_resp_ms", "p99_tx_ms"});
  for (auto system : {cluster::SystemKind::kCure, cluster::SystemKind::kPocc}) {
    for (std::uint32_t clients : scale.client_sweep()) {
      const auto cfg =
          paper_config(system, scale.partitions(), /*seed=*/6000 + clients);
      const auto m = run_point(cfg, wl, clients, scale.warmup_us(),
                               scale.measure_us());
      const double tx_ms = m.client_ops.tx_latency_us.mean() / 1e3;
      const double p99_ms =
          static_cast<double>(m.client_ops.tx_latency_us.percentile(99)) /
          1e3;
      const char* name = cluster::system_name(system);
      print_row({std::to_string(clients), name,
                 fmt_mops(m.throughput_ops_per_sec), fmt(tx_ms, 4),
                 fmt(p99_ms, 4)});
      print_csv_row({std::to_string(clients), name,
                     fmt_mops(m.throughput_ops_per_sec), fmt(tx_ms, 4),
                     fmt(p99_ms, 4)});
    }
  }
  std::printf(
      "\nExpected shape (paper): similar peak throughput; past the peak POCC\n"
      "throughput drops (RO-TX latency surges) while Cure* plateaus.\n");
  return 0;
}
