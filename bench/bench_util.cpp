// Shared benchmark harness plumbing: POCC_SCALE env handling, cluster
// construction helpers and CSV-ish result printing.
#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/metrics.hpp"

namespace pocc::bench {

Scale scale_from_env() {
  Scale s;
  const char* env = std::getenv("POCC_SCALE");
  s.full = env != nullptr && std::strcmp(env, "full") == 0;
  return s;
}

cluster::SimClusterConfig paper_config(cluster::SystemKind system,
                                       std::uint32_t partitions,
                                       std::uint64_t seed) {
  cluster::SimClusterConfig cfg;
  cfg.topology.num_dcs = 3;
  cfg.topology.partitions_per_dc = partitions;
  cfg.topology.partition_scheme = PartitionScheme::kPrefix;
  cfg.latency = LatencyConfig::aws_three_dc();
  cfg.latency.intra_dc_base_us = 500;
  cfg.latency.jitter_mean_us = 60;
  // NTP-grade synchronization (§V-A: clocks synced before each experiment):
  // ~1 ms error across sites (WAN), ~150 us between nodes of one DC (LAN).
  cfg.clock.offset_sigma_us = 150.0;
  cfg.clock.dc_offset_sigma_us = 1'000.0;
  cfg.clock.drift_ppm_sigma = 10.0;
  // CPU cost model calibrated so a full-scale (96-node) deployment saturates
  // in the paper's ~0.6-0.7 Mops/s range on the 32:1 workload (§V-B).
  cfg.service.cores = 2;
  cfg.service.get_us = 260;
  cfg.service.put_us = 300;
  cfg.service.replicate_us = 60;
  cfg.service.heartbeat_us = 10;
  cfg.service.version_hop_us = 20;
  cfg.service.tx_coord_us = 150;
  cfg.service.tx_coord_per_part_us = 40;
  cfg.service.slice_us = 150;
  cfg.service.slice_per_key_us = 60;
  cfg.service.stabilization_us = 25;
  cfg.service.gc_round_us = 40;
  cfg.protocol.heartbeat_interval_us = 1'000;      // §V-A: 1 ms
  cfg.protocol.stabilization_interval_us = 5'000;  // §V-A: 5 ms
  cfg.protocol.gc_interval_us = 100'000;
  cfg.protocol.put_dependency_wait = true;  // §V-A
  cfg.system = system;
  cfg.seed = seed;
  cfg.enable_checker = false;
  return cfg;
}

workload::WorkloadConfig paper_workload() {
  workload::WorkloadConfig wl;
  wl.pattern = workload::Pattern::kGetPut;
  wl.gets_per_put = 32;
  wl.think_time_us = 25'000;       // §V-A
  wl.zipf_theta = 0.99;            // §V-A
  wl.keys_per_partition = 1'000'000;
  wl.value_size = 8;
  return wl;
}

cluster::ClusterMetrics run_point(const cluster::SimClusterConfig& cfg,
                                  const workload::WorkloadConfig& wl,
                                  std::uint32_t clients_per_partition,
                                  Duration warmup_us, Duration measure_us) {
  cluster::SimCluster sim_cluster(cfg);
  sim_cluster.add_workload_clients(clients_per_partition, wl);
  sim_cluster.run_for(warmup_us);
  sim_cluster.begin_measurement();
  sim_cluster.run_for(measure_us);
  cluster::ClusterMetrics m = sim_cluster.end_measurement();
  sim_cluster.stop_clients();
  return m;
}

void print_banner(const std::string& figure, const std::string& description,
                  const Scale& scale) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("scale: %s (POCC_SCALE=small|full)\n", scale.name());
  std::printf("==============================================================\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) {
    std::printf("%-16s", c.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void print_csv_header(const std::string& figure,
                      const std::vector<std::string>& columns) {
  std::printf("# CSV %s\n", figure.c_str());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", columns[i].c_str());
  }
  std::printf("\n");
}

void print_csv_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  return stats::format_double(v, precision);
}

std::string fmt_mops(double ops_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", ops_per_sec / 1e6);
  return buf;
}

}  // namespace pocc::bench
