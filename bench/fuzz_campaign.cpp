// Cluster-fuzz campaign driver.
//
// Generates seed-deterministic FaultPlans and runs them against the four
// protocol engines under mixed Zipf workloads, asserting zero causal-
// consistency violations and post-fault convergence on every run (see
// src/fault/fuzz_runner.hpp for the pass criteria). On failure it prints a
// one-line repro that replays the identical run bit for bit:
//
//   fuzz_campaign --engine pocc --seed 42 --plan-hash 0x...
//
// Usage:
//   fuzz_campaign [--plans N] [--seed BASE] [--engine pocc|scalar_pocc|
//                 ha_pocc|cure|all] [--durability idealized|wal]
//                 [--plan-hash 0xH] [--verify-replay] [--list]
//                 [--duration-us D] [--drain-us D] [--out FILE]
//                 [--dump-failures DIR]
//
// Without --engine, each of BASE..BASE+N-1 seeds runs on every engine.
// --durability wal routes fail-stop crashes through the real WAL recovery
// path (engine rebuild + log replay) instead of the idealized durable-store
// model; seed replay stays bit-identical within a mode.
// --plan-hash makes a single-seed replay fail loudly if the regenerated plan
// does not match the repro (generator drift). --verify-replay runs every
// case twice and requires bit-identical end-state digests. CI runs this
// nightly with a date-derived base seed (see .github/workflows/ci.yml).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fuzz_runner.hpp"

namespace {

using pocc::cluster::SystemKind;
using pocc::fault::FuzzCase;
using pocc::fault::FuzzOutcome;

struct Options {
  std::uint64_t plans = 64;
  std::uint64_t base_seed = 1;
  std::vector<SystemKind> engines = {SystemKind::kPocc,
                                     SystemKind::kScalarPocc,
                                     SystemKind::kHaPocc, SystemKind::kCure};
  bool single_engine = false;
  pocc::cluster::DurabilityMode durability =
      pocc::cluster::DurabilityMode::kIdealized;
  bool verify_replay = false;
  bool list_only = false;
  std::uint64_t expect_plan_hash = 0;  // 0 = not checked
  pocc::Duration duration_us = 600'000;
  pocc::Duration drain_us = 5'000'000;
  std::string out_path;
  std::string dump_dir;
};

std::uint64_t parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);  // base 0: accepts 0x... hashes
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--plans") {
      const char* v = need_value("--plans");
      if (v == nullptr) return false;
      opt.plans = parse_u64(v);
    } else if (a == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      opt.base_seed = parse_u64(v);
    } else if (a == "--engine") {
      const char* v = need_value("--engine");
      if (v == nullptr) return false;
      if (std::string(v) == "all") continue;  // default set
      SystemKind k;
      if (!pocc::fault::parse_engine(v, k)) {
        std::fprintf(stderr, "unknown engine '%s'\n", v);
        return false;
      }
      opt.engines = {k};
      opt.single_engine = true;
    } else if (a == "--durability") {
      const char* v = need_value("--durability");
      if (v == nullptr) return false;
      if (!pocc::fault::parse_durability(v, opt.durability)) {
        std::fprintf(stderr, "unknown durability mode '%s'\n", v);
        return false;
      }
    } else if (a == "--plan-hash") {
      const char* v = need_value("--plan-hash");
      if (v == nullptr) return false;
      opt.expect_plan_hash = parse_u64(v);
    } else if (a == "--verify-replay") {
      opt.verify_replay = true;
    } else if (a == "--list") {
      opt.list_only = true;
    } else if (a == "--duration-us") {
      const char* v = need_value("--duration-us");
      if (v == nullptr) return false;
      opt.duration_us = static_cast<pocc::Duration>(parse_u64(v));
    } else if (a == "--drain-us") {
      const char* v = need_value("--drain-us");
      if (v == nullptr) return false;
      opt.drain_us = static_cast<pocc::Duration>(parse_u64(v));
    } else if (a == "--out") {
      const char* v = need_value("--out");
      if (v == nullptr) return false;
      opt.out_path = v;
    } else if (a == "--dump-failures") {
      const char* v = need_value("--dump-failures");
      if (v == nullptr) return false;
      opt.dump_dir = v;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

FuzzCase make_case(const Options& opt, SystemKind system,
                   std::uint64_t seed) {
  FuzzCase c;
  c.system = system;
  c.durability = opt.durability;
  c.seed = seed;
  c.run_us = opt.duration_us;
  c.drain_us = opt.drain_us;
  return c;
}

void dump_failure(const Options& opt, const FuzzCase& c,
                  const FuzzOutcome& o) {
  if (opt.dump_dir.empty()) return;
  const std::string path = opt.dump_dir + "/fail_" +
                           pocc::fault::engine_flag(c.system) + "_" +
                           pocc::fault::durability_flag(c.durability) +
                           "_seed" + std::to_string(c.seed) + ".txt";
  std::ofstream f(path);
  if (!f) return;
  f << "REPRO: " << pocc::fault::repro_line(c, o) << "\n\n";
  for (const std::string& msg : o.failures) f << "FAILURE: " << msg << "\n";
  f << "\n" << o.plan_text;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  if (opt.expect_plan_hash != 0) {
    // A repro line names exactly one case.
    opt.plans = 1;
    if (!opt.single_engine) {
      std::fprintf(stderr, "--plan-hash requires --engine\n");
      return 2;
    }
  }

  std::ofstream out;
  if (!opt.out_path.empty()) out.open(opt.out_path);

  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  for (std::uint64_t p = 0; p < opt.plans; ++p) {
    const std::uint64_t seed = opt.base_seed + p;
    for (const SystemKind system : opt.engines) {
      const FuzzCase c = make_case(opt, system, seed);
      if (opt.list_only) {
        const pocc::fault::FaultPlan plan = pocc::fault::plan_for_case(c);
        std::printf("engine=%s seed=%llu plan=%s\n%s",
                    pocc::fault::engine_flag(system),
                    static_cast<unsigned long long>(seed),
                    pocc::fault::hex64(plan.hash()).c_str(),
                    plan.to_string().c_str());
        continue;
      }
      ++runs;
      FuzzOutcome o = pocc::fault::run_fuzz_case(c);
      if (opt.expect_plan_hash != 0 && o.plan_hash != opt.expect_plan_hash) {
        o.ok = false;
        o.failures.push_back(
            "replay: regenerated plan hash " + pocc::fault::hex64(o.plan_hash) +
            " does not match the repro's " +
            pocc::fault::hex64(opt.expect_plan_hash) +
            " (plan generator drifted; the original schedule is lost)");
      }
      if (opt.verify_replay && o.ok) {
        const FuzzOutcome replay = pocc::fault::run_fuzz_case(c);
        if (replay.digest != o.digest) {
          o.ok = false;
          o.failures.push_back("replay: second run digest " +
                               pocc::fault::hex64(replay.digest) +
                               " != first run " +
                               pocc::fault::hex64(o.digest) +
                               " (nondeterminism in the event loop)");
        }
      }
      std::printf(
          "[%s] engine=%-11s dur=%-9s seed=%-6llu plan=%s faults=%llu "
          "ops=%llu checks=%llu recovered=%llu dropped=%llu fallbacks=%llu "
          "digest=%s\n",
          o.ok ? "ok" : "FAIL", pocc::fault::engine_flag(system),
          pocc::fault::durability_flag(c.durability),
          static_cast<unsigned long long>(seed),
          pocc::fault::hex64(o.plan_hash).c_str(),
          static_cast<unsigned long long>(o.faults_injected),
          static_cast<unsigned long long>(o.completed_ops),
          static_cast<unsigned long long>(o.checks_performed),
          static_cast<unsigned long long>(o.versions_recovered),
          static_cast<unsigned long long>(o.messages_dropped),
          static_cast<unsigned long long>(o.session_fallbacks),
          pocc::fault::hex64(o.digest).c_str());
      if (out.is_open()) {
        out << "{\"ok\":" << (o.ok ? "true" : "false") << ",\"engine\":\""
            << pocc::fault::engine_flag(system) << "\",\"durability\":\""
            << pocc::fault::durability_flag(c.durability)
            << "\",\"seed\":" << seed
            << ",\"plan_hash\":\"" << pocc::fault::hex64(o.plan_hash)
            << "\",\"ops\":" << o.completed_ops
            << ",\"checks\":" << o.checks_performed
            << ",\"faults\":" << o.faults_injected
            << ",\"recovered\":" << o.versions_recovered
            << ",\"dropped\":" << o.messages_dropped
            << ",\"fallbacks\":" << o.session_fallbacks << ",\"digest\":\""
            << pocc::fault::hex64(o.digest) << "\"}\n";
      }
      if (!o.ok) {
        ++failures;
        for (const std::string& msg : o.failures) {
          std::printf("    FAILURE: %s\n", msg.c_str());
        }
        std::printf("    REPRO: %s\n", pocc::fault::repro_line(c, o).c_str());
        dump_failure(opt, c, o);
      }
    }
  }
  if (!opt.list_only) {
    std::printf("fuzz campaign: %llu run(s), %llu failure(s)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(failures));
  }
  return failures == 0 ? 0 : 1;
}
