// Figure 3d — "Data staleness in POCC and Cure* with different # clients per
// partition" (RO-TX(half)+PUT workload, §V-C).
//
// Paper shape: the fraction of old items returned by POCC transactions is
// about two orders of magnitude lower than Cure*'s, because POCC's snapshot
// boundaries track what the DC has *received* (VV) while Cure*'s track what
// is *stable* (GSS). In POCC's transactional reads "old" and "unmerged"
// coincide (§V-C), so only Cure* reports a separate unmerged series.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 3d", "%old (POCC vs Cure*) and %unmerged (Cure*)",
               scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.pattern = workload::Pattern::kTxPut;
  wl.tx_partitions = scale.partitions() / 2;

  print_row({"clients/part", "POCC %old", "Cure* %old", "Cure* %unm",
             "Cure*/POCC"});
  print_csv_header("fig3d", {"clients_per_partition", "pocc_pct_old",
                             "cure_pct_old", "cure_pct_unmerged", "ratio"});
  for (std::uint32_t clients : scale.client_sweep()) {
    double pocc_old = 0.0;
    double cure_old = 0.0;
    double cure_unmerged = 0.0;
    // Average two seeds per point: POCC's %old sits so low that single runs
    // are dominated by individual backlog episodes.
    constexpr std::uint64_t kSeeds = 2;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const auto cfg = paper_config(cluster::SystemKind::kPocc,
                                    scale.partitions(),
                                    /*seed=*/8000 + clients + seed * 91);
      const auto m =
          run_point(cfg, wl, clients, scale.warmup_us(), scale.measure_us());
      pocc_old += m.staleness.pct_old() / kSeeds;
    }
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const auto cfg = paper_config(cluster::SystemKind::kCure,
                                    scale.partitions(),
                                    /*seed=*/8100 + clients + seed * 91);
      const auto m =
          run_point(cfg, wl, clients, scale.warmup_us(), scale.measure_us());
      cure_old += m.staleness.pct_old() / kSeeds;
      cure_unmerged += m.staleness.pct_unmerged() / kSeeds;
    }
    const double ratio = pocc_old > 0 ? cure_old / pocc_old : 0.0;
    print_row({std::to_string(clients), fmt(pocc_old, 3), fmt(cure_old, 3),
               fmt(cure_unmerged, 3), fmt(ratio, 3)});
    print_csv_row({std::to_string(clients), fmt(pocc_old, 3),
                   fmt(cure_old, 3), fmt(cure_unmerged, 3), fmt(ratio, 3)});
  }
  std::printf(
      "\nExpected shape (paper): POCC %%old roughly two orders of magnitude\n"
      "below Cure*'s.\n");
  return 0;
}
