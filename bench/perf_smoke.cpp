// Perf smoke: one fixed-seed simulation run, one JSON line.
//
// The repo's perf-trajectory artifact: a deterministic 3-DC x 4-partition
// SimCluster run under the paper's GET/PUT workload, reporting simulated
// throughput, host event rate, wall time and peak RSS. CI runs it on every
// push (non-gating) and uploads BENCH_perf_smoke.json, so hot-path
// regressions show up as a trend, not an anecdote.
//
//   ./perf_smoke                         # JSON line on stdout
//   ./perf_smoke --out BENCH_perf_smoke.json
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "store/key_space.hpp"

namespace {

using namespace pocc;

/// Peak resident set size in kilobytes (Linux ru_maxrss unit).
long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // Fixed configuration — change it only intentionally, it invalidates the
  // perf trajectory.
  constexpr std::uint32_t kPartitions = 4;
  constexpr std::uint32_t kClientsPerPartition = 32;
  constexpr std::uint64_t kSeed = 42;
  constexpr Duration kWarmupUs = 400'000;
  constexpr Duration kMeasureUs = 2'000'000;

  cluster::SimClusterConfig cfg =
      bench::paper_config(cluster::SystemKind::kPocc, kPartitions, kSeed);
  workload::WorkloadConfig wl = bench::paper_workload();

  const auto wall_start = std::chrono::steady_clock::now();

  cluster::SimCluster sim_cluster(cfg);
  sim_cluster.add_workload_clients(kClientsPerPartition, wl);
  sim_cluster.run_for(kWarmupUs);
  const std::uint64_t events_before = sim_cluster.simulator().executed_events();
  // events_per_sec is measurement-window events over measurement-window wall
  // time; wall_ms stays the whole run (construction + warmup + measurement)
  // so both the hot-path rate and total cost are tracked consistently.
  const auto meas_start = std::chrono::steady_clock::now();
  sim_cluster.begin_measurement();
  sim_cluster.run_for(kMeasureUs);
  const auto meas_end = std::chrono::steady_clock::now();
  const cluster::ClusterMetrics m = sim_cluster.end_measurement();
  const std::uint64_t events =
      sim_cluster.simulator().executed_events() - events_before;
  sim_cluster.stop_clients();

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  const double meas_ms =
      std::chrono::duration<double, std::milli>(meas_end - meas_start).count();
  const double events_per_sec =
      meas_ms > 0 ? static_cast<double>(events) / (meas_ms / 1e3) : 0.0;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"perf_smoke\",\"seed\":%llu,\"dcs\":3,\"partitions\":%u,"
      "\"clients_per_partition\":%u,\"sim_ops\":%llu,"
      "\"sim_ops_per_sec\":%.1f,\"events\":%llu,\"events_per_sec\":%.1f,"
      "\"wall_ms\":%.1f,\"peak_rss_kb\":%ld,\"interned_keys\":%zu}",
      static_cast<unsigned long long>(kSeed), kPartitions,
      kClientsPerPartition, static_cast<unsigned long long>(m.completed_ops),
      m.throughput_ops_per_sec, static_cast<unsigned long long>(events),
      events_per_sec, wall_ms, peak_rss_kb(),
      store::KeySpace::global().size());

  std::printf("%s\n", json);
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  return 0;
}
