// Shared infrastructure for the figure-reproduction harnesses.
//
// Every harness reproduces one figure of the paper's evaluation (§V) on the
// simulated deployment. Scale is controlled by the POCC_SCALE environment
// variable:
//   POCC_SCALE=small  (default) — 3 DCs x 8 partitions, shorter sweeps; the
//                      whole bench suite completes in minutes on one core.
//   POCC_SCALE=full   — the paper's 3 DCs x 32 partitions and full parameter
//                      sweeps (much slower; tens of minutes per figure).
// Absolute numbers differ from the paper's AWS deployment by construction;
// EXPERIMENTS.md records the shape comparison per figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/sim_cluster.hpp"
#include "workload/workload.hpp"

namespace pocc::bench {

struct Scale {
  bool full = false;

  [[nodiscard]] std::uint32_t partitions() const { return full ? 32 : 8; }
  /// Sweep of partition counts for Fig. 1a.
  [[nodiscard]] std::vector<std::uint32_t> partition_sweep() const {
    if (full) return {2, 4, 8, 16, 24, 32};
    return {2, 4, 8};
  }
  /// Sweep of clients per partition (per DC) for the load-driven figures.
  /// The top end sits just past the saturation knee, mirroring the x-range of
  /// the paper's Figures 1b/2 (which stop at the maximum throughput).
  [[nodiscard]] std::vector<std::uint32_t> client_sweep() const {
    if (full) return {16, 32, 64, 96, 144, 176, 208, 240};
    return {16, 32, 64, 96, 144, 176, 208, 240};
  }
  /// Clients per partition driving the system to its maximum throughput.
  [[nodiscard]] std::uint32_t saturating_clients() const { return 208; }
  /// Partitions contacted per RO-TX for Fig. 3a.
  [[nodiscard]] std::vector<std::uint32_t> tx_partition_sweep() const {
    if (full) return {1, 2, 4, 8, 16, 24, 32};
    return {1, 2, 4, 8};
  }
  [[nodiscard]] Duration warmup_us() const { return full ? 1'000'000 : 400'000; }
  [[nodiscard]] Duration measure_us() const {
    return full ? 3'000'000 : 1'500'000;
  }

  [[nodiscard]] const char* name() const { return full ? "full" : "small"; }
};

/// Reads POCC_SCALE from the environment.
Scale scale_from_env();

/// Deployment configuration mirroring §V-A: 3 DCs (Oregon/Virginia/Ireland
/// latencies), NTP-grade clock skew, calibrated CPU cost model, 1 ms
/// heartbeats, 5 ms Cure* stabilization, LWW with the PUT dependency wait on.
cluster::SimClusterConfig paper_config(cluster::SystemKind system,
                                       std::uint32_t partitions,
                                       std::uint64_t seed);

/// Workload defaults from §V-A: zipf(0.99) over 1M keys/partition, 8-byte
/// values, 25 ms think time.
workload::WorkloadConfig paper_workload();

/// Builds a cluster, attaches `clients_per_partition` closed-loop clients per
/// partition per DC, runs warmup then a measurement window, and returns the
/// aggregated metrics.
cluster::ClusterMetrics run_point(const cluster::SimClusterConfig& cfg,
                                  const workload::WorkloadConfig& wl,
                                  std::uint32_t clients_per_partition,
                                  Duration warmup_us, Duration measure_us);

// ----- output helpers (aligned tables + CSV for plotting) -----

/// Prints the harness banner: figure id, paper reference, scale.
void print_banner(const std::string& figure, const std::string& description,
                  const Scale& scale);

/// Prints an aligned row of columns (first call with the header).
void print_row(const std::vector<std::string>& cells);

/// CSV block delimiter so plots can be extracted mechanically.
void print_csv_header(const std::string& figure,
                      const std::vector<std::string>& columns);
void print_csv_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 4);
std::string fmt_mops(double ops_per_sec);

}  // namespace pocc::bench
