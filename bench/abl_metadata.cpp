// Ablation — dependency-tracking granularity (§III-A / §IV).
//
// The paper argues dependency vectors (one entry per DC) hit the sweet spot
// between metadata size and tracking precision, noting coarser tracking
// "might cause a client's request to be (uselessly) stalled because of a
// potentially unresolved dependency that does not correspond to any real
// dependency". This harness compares POCC's vector granularity against the
// scalar endpoint of the spectrum (GentleRain-style single timestamp),
// measuring the spurious-stall and snapshot-staleness cost of coarsening.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: dependency granularity",
               "vector-clock POCC vs scalar-clock OCC", scale);

  print_row({"workload", "system", "Mops/s", "stall prob", "block(ms)",
             "% old"});
  print_csv_header("abl_metadata", {"workload", "system", "mops",
                                    "stall_prob", "avg_block_ms", "pct_old"});
  const cluster::SystemKind systems[] = {cluster::SystemKind::kPocc,
                                         cluster::SystemKind::kScalarPocc};

  // Read-dominated workload with a short think time: coarse dependencies
  // cause spurious GET stalls.
  for (auto system : systems) {
    workload::WorkloadConfig wl = paper_workload();
    wl.gets_per_put = 8;
    wl.think_time_us = 2'000;
    const auto cfg =
        paper_config(system, scale.partitions(), /*seed=*/9400);
    const auto m = run_point(cfg, wl, 16, scale.warmup_us(),
                             scale.measure_us());
    const char* name = cluster::system_name(system);
    print_row({"get-put", name, fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
               fmt(m.staleness.pct_old(), 3)});
    print_csv_row({"get-put", name, fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
                   fmt(m.staleness.pct_old(), 3)});
  }

  // Transactional workload: the scalar snapshot falls back to a GST-like cut,
  // giving up POCC's snapshot freshness (Fig. 3d's advantage shrinks).
  for (auto system : systems) {
    workload::WorkloadConfig wl = paper_workload();
    wl.pattern = workload::Pattern::kTxPut;
    wl.tx_partitions = scale.partitions() / 2;
    wl.think_time_us = 10'000;
    const auto cfg =
        paper_config(system, scale.partitions(), /*seed=*/9401);
    const auto m = run_point(cfg, wl, 32, scale.warmup_us(),
                             scale.measure_us());
    const char* name = cluster::system_name(system);
    print_row({"tx-put", name, fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
               fmt(m.staleness.pct_old(), 3)});
    print_csv_row({"tx-put", name, fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4),
                   fmt(m.staleness.pct_old(), 3)});
  }
  std::printf(
      "\nExpected: scalar tracking stalls reads more often (spurious\n"
      "dependencies) and returns staler transactional snapshots; vector\n"
      "tracking pays M timestamps per message for the precision (§IV).\n");
  return 0;
}
