// event_loop_bench — readiness-backend micro benchmark behind the tentpole
// numbers: wakeup latency (one hot fd among N armed ones) and idle ready-set
// scan cost (wait(0) with nothing pending) per EventLoop backend at 1k/10k/
// 100k registered fds.
//
// What the two metrics separate:
//   * wakeup_ns — the cost of getting ONE ready event out of the kernel
//     while N fds are registered. The timed region covers the wait() alone;
//     the producing write and draining read sit outside it so the number
//     isolates the per-backend harvest cost. epoll and io_uring are
//     O(ready); poll(2) pays an O(N) kernel scan per call, which is exactly
//     why it exists only as the portability fallback. For kUring the hot
//     CQE is already in the shared ring by wait() time (the same-thread
//     write ran the poll task-work on its way back to userspace), so the
//     harvest is syscall-free — the diagnostics line prints the loop's
//     no_syscall_waits counter to prove it.
//   * scan_ns — the cost of asking "anything ready?" and hearing "no". For
//     kUring this is a shared-memory CQ-ring check with ZERO syscalls; for
//     epoll/poll it is a full syscall round trip.
//
// The fd ladder is requested at 1k/10k/100k and clamped to what
// RLIMIT_NOFILE allows after raising the soft limit to the hard limit; the
// JSON reports requested and actual so runs on differently-provisioned
// machines stay comparable. Both ends of each pipe are registered (the
// write end parked with read interest), so each pipe contributes two fds.
//
// Output: one flat JSON line ("bench":"event_loop"), written to the path in
// argv[1] (default BENCH_event_loop.json) — scripts/perf_delta.sh compares
// it against bench/baselines/BENCH_event_loop.json in CI.
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "net/event_loop.hpp"

namespace {

using pocc::net::EventLoop;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raise the soft fd limit to the hard limit; returns the resulting cap.
std::size_t raise_fd_limit() {
  rlimit rl{};
  POCC_ASSERT(::getrlimit(RLIMIT_NOFILE, &rl) == 0);
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);  // best effort; re-read below
    POCC_ASSERT(::getrlimit(RLIMIT_NOFILE, &rl) == 0);
  }
  return static_cast<std::size_t>(rl.rlim_cur);
}

struct SizePoint {
  const char* label;        // JSON key fragment
  std::size_t requested;    // fds asked for
  std::size_t actual = 0;   // fds actually registered after the clamp
  double wakeup_ns = 0.0;
  double scan_ns = 0.0;
};

/// One backend at one registered-fd count. Returns false when the ladder
/// point cannot run at all (fd budget too small for even the hot pipe).
bool run_point(EventLoop::Backend backend, SizePoint& pt,
               std::size_t fd_budget) {
  // Two registered fds per pipe; keep headroom for stdio/ring/epoll fds.
  const std::size_t budget_fds =
      fd_budget > 64 ? fd_budget - 64 : 0;
  const std::size_t want_pipes = (pt.requested + 1) / 2;
  const std::size_t npipes = std::min(want_pipes, budget_fds / 2);
  if (npipes == 0) return false;

  EventLoop loop(backend);
  if (loop.backend() != backend) return false;  // kUring degraded: skip

  std::vector<int> fds;
  fds.reserve(npipes * 2);
  for (std::size_t i = 0; i < npipes; ++i) {
    int p[2] = {-1, -1};
    if (::pipe(p) != 0) break;  // EMFILE under the headroom estimate
    ::fcntl(p[0], F_SETFL, O_NONBLOCK);
    ::fcntl(p[1], F_SETFL, O_NONBLOCK);
    loop.watch(p[0], /*read=*/true, /*write=*/false);
    loop.watch(p[1], /*read=*/true, /*write=*/false);  // parked, never fires
    fds.push_back(p[0]);
    fds.push_back(p[1]);
  }
  pt.actual = loop.watched();
  if (pt.actual < 2) {
    for (const int fd : fds) ::close(fd);
    return false;
  }

  std::vector<EventLoop::Event> evs;
  // Drain any startup noise (initial-arm level checks, etc.).
  while (loop.wait(0, evs) > 0) {
  }

  // --- wakeup latency: write one byte into the hot pipe, wait, read it ---
  const int hot_r = fds[0];
  const int hot_w = fds[1];
  const int kWakeups = 2000;
  char b = 0;
  // Warm up the path (page faults, lazy table growth).
  for (int i = 0; i < 50; ++i) {
    POCC_ASSERT(::write(hot_w, "x", 1) == 1);
    while (loop.wait(1000, evs) == 0) {
    }
    POCC_ASSERT(::read(hot_r, &b, 1) == 1);
  }
  std::uint64_t waited_ns = 0;
  for (int i = 0; i < kWakeups; ++i) {
    POCC_ASSERT(::write(hot_w, "x", 1) == 1);
    const std::uint64_t t0 = now_ns();
    while (loop.wait(1000, evs) == 0) {  // EINTR-class re-enter
    }
    waited_ns += now_ns() - t0;
    POCC_ASSERT(::read(hot_r, &b, 1) == 1);
  }
  pt.wakeup_ns = static_cast<double>(waited_ns) / kWakeups;
  if (backend == EventLoop::Backend::kUring) {
    std::fprintf(stderr,
                 "event_loop_bench:   uring enters=%llu sqes=%llu cqes=%llu "
                 "no_syscall_waits=%llu\n",
                 static_cast<unsigned long long>(loop.stats().uring_enters.load()),
                 static_cast<unsigned long long>(loop.stats().uring_sqes.load()),
                 static_cast<unsigned long long>(loop.stats().uring_cqes.load()),
                 static_cast<unsigned long long>(
                     loop.stats().uring_no_syscall_waits.load()));
  }

  // --- idle scan: "anything ready?" with nothing pending ---
  while (loop.wait(0, evs) > 0) {  // quiesce the hot pipe's tail events
  }
  const int kScans = 20'000;
  const std::uint64_t s0 = now_ns();
  for (int i = 0; i < kScans; ++i) {
    loop.wait(0, evs);
  }
  pt.scan_ns = static_cast<double>(now_ns() - s0) / kScans;

  for (const int fd : fds) {
    loop.unwatch(fd);
    ::close(fd);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_event_loop.json";
  const std::size_t fd_budget = raise_fd_limit();

  std::vector<EventLoop::Backend> backends{EventLoop::Backend::kEpoll,
                                           EventLoop::Backend::kPoll};
  if (EventLoop::uring_available()) {
    backends.push_back(EventLoop::Backend::kUring);
  } else {
    std::fprintf(stderr,
                 "event_loop_bench: io_uring unavailable on this kernel — "
                 "uring_* keys omitted\n");
  }

  std::string json = "{\"bench\":\"event_loop\",\"fd_limit\":" +
                     std::to_string(fd_budget);
  std::fprintf(stderr, "event_loop_bench: fd limit %zu\n", fd_budget);
  for (const EventLoop::Backend backend : backends) {
    const char* name = EventLoop::backend_name(backend);
    SizePoint ladder[] = {{"1k", 1'000}, {"10k", 10'000}, {"100k", 100'000}};
    for (SizePoint& pt : ladder) {
      if (!run_point(backend, pt, fd_budget)) {
        std::fprintf(stderr, "event_loop_bench: %s @%s skipped (fd budget)\n",
                     name, pt.label);
        continue;
      }
      std::fprintf(stderr,
                   "event_loop_bench: %-5s @%-4s fds=%6zu wakeup %8.0f ns   "
                   "idle scan %8.0f ns\n",
                   name, pt.label, pt.actual, pt.wakeup_ns, pt.scan_ns);
      json += ",\"" + std::string(name) + "_" + pt.label +
              "_fds\":" + std::to_string(pt.actual);
      json += ",\"" + std::string(name) + "_" + pt.label + "_wakeup_ns\":" +
              std::to_string(pt.wakeup_ns);
      json += ",\"" + std::string(name) + "_" + pt.label + "_scan_ns\":" +
              std::to_string(pt.scan_ns);
    }
  }
  json += "}";

  std::printf("%s\n", json.c_str());
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "event_loop_bench: cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  return 0;
}
