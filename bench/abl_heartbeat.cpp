// Ablation — heartbeat interval Δ (§IV-B).
//
// Heartbeats keep remote version vectors advancing when a partition serves no
// PUTs; they are what unblocks parked POCC requests whose (spurious or real)
// dependencies have already been subsumed by time. Larger Δ means longer
// blocking times and, past a point, more blocked operations.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: heartbeat interval",
               "POCC blocking vs heartbeat interval Δ", scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 8;
  wl.think_time_us = 2'000;  // short think time exposes VV staleness...

  const Duration sweep[] = {500, 1'000, 2'000, 5'000, 10'000, 20'000};
  print_row({"Δ (ms)", "Mops/s", "block prob", "avg block (ms)"});
  print_csv_header("abl_heartbeat",
                   {"delta_ms", "mops", "block_prob", "avg_block_ms"});
  for (Duration delta : sweep) {
    auto cfg = paper_config(cluster::SystemKind::kPocc, scale.partitions(),
                            /*seed=*/9000 + delta);
    cfg.protocol.heartbeat_interval_us = delta;
    // ...while the moderate client count keeps the CPUs un-saturated, so the
    // effect measured is Δ itself, not queueing backlog.
    const auto m = run_point(cfg, wl, 16, scale.warmup_us(),
                             scale.measure_us());
    print_row({fmt(static_cast<double>(delta) / 1e3, 3),
               fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(m.blocking.avg_blocking_time_us() / 1e3, 4)});
    print_csv_row({fmt(static_cast<double>(delta) / 1e3, 3),
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(m.blocking.avg_blocking_time_us() / 1e3, 4)});
  }
  std::printf(
      "\nExpected: blocking time grows with Δ (parked requests wait for the\n"
      "next heartbeat); throughput is largely insensitive until Δ is large.\n");
  return 0;
}
