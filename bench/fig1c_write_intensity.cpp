// Figure 1c — "Throughput on 32 partitions with different GET:PUT
// workloads" — sensitivity to write intensity (ratios 32:1 down to 1:1).
//
// Paper shape: throughput decreases as write intensity grows for both
// systems; the degradation is more pronounced for POCC (blocking becomes more
// likely at higher update rates), with a worst-case loss of ~10% at 2:1.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 1c", "throughput vs GET:PUT ratio", scale);

  const std::uint32_t ratios[] = {32, 16, 8, 4, 2, 1};

  print_row({"GET:PUT", "Cure* (Mops/s)", "POCC (Mops/s)", "POCC/Cure*"});
  print_csv_header("fig1c", {"ratio", "cure_mops", "pocc_mops", "rel"});
  for (std::uint32_t ratio : ratios) {
    workload::WorkloadConfig wl = paper_workload();
    wl.gets_per_put = ratio;
    double mops[2] = {0.0, 0.0};
    const cluster::SystemKind systems[2] = {cluster::SystemKind::kCure,
                                            cluster::SystemKind::kPocc};
    for (int s = 0; s < 2; ++s) {
      const auto cfg =
          paper_config(systems[s], scale.partitions(), /*seed=*/3000 + ratio);
      const auto m = run_point(cfg, wl, scale.saturating_clients(),
                               scale.warmup_us(), scale.measure_us());
      mops[s] = m.throughput_ops_per_sec;
    }
    print_row({std::to_string(ratio) + ":1", fmt_mops(mops[0]),
               fmt_mops(mops[1]),
               fmt(mops[0] > 0 ? mops[1] / mops[0] : 0.0, 3)});
    print_csv_row({std::to_string(ratio), fmt_mops(mops[0]),
                   fmt_mops(mops[1]),
                   fmt(mops[0] > 0 ? mops[1] / mops[0] : 0.0, 3)});
  }
  std::printf(
      "\nExpected shape (paper): both drop as writes increase; POCC stays\n"
      "within ~10%% of Cure* (worst around the 2:1 ratio).\n");
  return 0;
}
