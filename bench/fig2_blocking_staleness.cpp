// Figure 2 — "Blocking incidence in POCC and perceived data staleness in
// Cure* (32 partitions, 32:1 GET:PUT workload)".
//
//  * Fig. 2a: probability that an operation blocks in POCC and the average
//    blocking time of blocked operations, as functions of throughput.
//  * Fig. 2b: percentage of old / unmerged items returned by Cure* and the
//    number of fresher / unmerged versions in the affected chains.
//
// Paper shape: POCC blocking probability is negligible (<1e-3) until the
// throughput approaches saturation, then rises above 1e-2 with ms-scale
// blocking times. Cure*'s %old approaches ~15% and %unmerged ~10% near
// saturation (30% overloaded) — POCC's GETs are never stale by construction.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 2",
               "POCC blocking (2a) and Cure* staleness (2b), 32:1 GET:PUT",
               scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 32;

  std::printf("--- Fig. 2a: blocking behavior in POCC ---\n");
  print_row({"clients/part", "Mops/s", "block prob", "avg block (ms)",
             "p99 block (ms)"});
  print_csv_header("fig2a", {"clients_per_partition", "mops", "block_prob",
                             "avg_block_ms", "p99_block_ms"});
  for (std::uint32_t clients : scale.client_sweep()) {
    const auto cfg = paper_config(cluster::SystemKind::kPocc,
                                  scale.partitions(), /*seed=*/4000 + clients);
    const auto m =
        run_point(cfg, wl, clients, scale.warmup_us(), scale.measure_us());
    const double avg_block_ms = m.blocking.avg_blocking_time_us() / 1e3;
    const double p99_block_ms =
        static_cast<double>(m.blocking.blocked_time_us.percentile(99)) / 1e3;
    print_row({std::to_string(clients), fmt_mops(m.throughput_ops_per_sec),
               fmt(m.blocking.blocking_probability(), 3),
               fmt(avg_block_ms, 4), fmt(p99_block_ms, 4)});
    print_csv_row({std::to_string(clients),
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.blocking.blocking_probability(), 3),
                   fmt(avg_block_ms, 4), fmt(p99_block_ms, 4)});
  }

  std::printf("\n--- Fig. 2b: data staleness in Cure* ---\n");
  print_row({"clients/part", "Mops/s", "% old", "% unmerged",
             "# fresher", "# unmerged"});
  print_csv_header("fig2b", {"clients_per_partition", "mops", "pct_old",
                             "pct_unmerged", "fresher_versions",
                             "unmerged_versions"});
  for (std::uint32_t clients : scale.client_sweep()) {
    const auto cfg = paper_config(cluster::SystemKind::kCure,
                                  scale.partitions(), /*seed=*/4100 + clients);
    const auto m =
        run_point(cfg, wl, clients, scale.warmup_us(), scale.measure_us());
    print_row({std::to_string(clients), fmt_mops(m.throughput_ops_per_sec),
               fmt(m.staleness.pct_old(), 3),
               fmt(m.staleness.pct_unmerged(), 3),
               fmt(m.staleness.avg_fresher_versions(), 3),
               fmt(m.staleness.avg_unmerged_versions(), 3)});
    print_csv_row({std::to_string(clients),
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.staleness.pct_old(), 3),
                   fmt(m.staleness.pct_unmerged(), 3),
                   fmt(m.staleness.avg_fresher_versions(), 3),
                   fmt(m.staleness.avg_unmerged_versions(), 3)});
  }
  std::printf(
      "\nExpected shape (paper): POCC blocking negligible until near\n"
      "saturation, then noticeable; Cure* staleness grows with load.\n"
      "POCC GETs are never old/unmerged (returned version is the freshest\n"
      "received, §V-B).\n");
  return 0;
}
