// Recovery-time bench: WAL replay cost vs log length, one JSON line.
//
// Builds fixed-seed on-disk WALs of increasing record counts (the value-size
// and key-locality mix of the paper's workload), then measures the cold
// restart path — open the partition directory, heal the tail, replay every
// record into a fresh PartitionStore — exactly what a restarted poccd does
// before re-admitting clients. The largest log is measured twice: pure log
// replay, and snapshot + suffix replay after a mid-log checkpoint, so the
// artifact tracks both the worst case and the payoff of checkpointing.
//
//   ./recovery_bench                       # JSON line on stdout
//   ./recovery_bench --out BENCH_recovery.json
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "common/rng.hpp"
#include "store/key_space.hpp"
#include "store/partition_store.hpp"
#include "store/version.hpp"
#include "vclock/version_vector.hpp"
#include "wal/partition_wal.hpp"
#include "wal/wal_format.hpp"

namespace {

using namespace pocc;
namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 42;
constexpr std::uint32_t kDcs = 3;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() /
                       ("pocc_recovery_bench_" + std::to_string(::getpid())) /
                       name;
  fs::remove_all(dir);
  return dir.string();
}

/// Appends `records` seed-deterministic versions (paper-workload value sizes,
/// Zipf-ish hot key reuse) with a group commit every 64, optionally
/// checkpointing once at the midpoint.
void build_log(wal::PartitionWal& wal, std::uint64_t records,
               bool checkpoint_midway) {
  Rng rng(kSeed);
  store::PartitionStore store;
  VersionVector vv(kDcs);
  for (std::uint64_t i = 0; i < records; ++i) {
    store::Version v;
    v.key = store::intern_key("1:key" + std::to_string(rng.uniform(1024)));
    v.value = std::string(16 + rng.uniform(64), 'x');
    v.sr = static_cast<DcId>(rng.uniform(kDcs));
    v.ut = static_cast<Timestamp>(1'000 + i);
    v.dv = vv;
    wal.log_version(v);
    store.insert(v);
    vv.raise(v.sr, v.ut);
    if (i % 64 == 63) wal.sync();
    if (checkpoint_midway && i == records / 2) {
      wal.sync();
      const std::uint64_t seq = wal.begin_checkpoint();
      wal.commit_checkpoint(seq, wal::encode_snapshot(store, vv));
    }
  }
  wal.sync();
}

struct ReplayResult {
  double ms = 0.0;
  std::uint64_t versions = 0;
  std::uint64_t bytes = 0;  // durable bytes the restart had to read
};

/// The cold restart: open the directory and rebuild a store from it.
ReplayResult measure_replay(const std::string& dir) {
  ReplayResult r;
  for (const auto& e : fs::directory_iterator(dir)) {
    r.bytes += static_cast<std::uint64_t>(fs::file_size(e.path()));
  }
  const auto start = std::chrono::steady_clock::now();
  wal::PartitionWal wal(dir);
  store::PartitionStore store;
  VersionVector vv(kDcs);
  const wal::PartitionWal::ReplayStats stats = wal.replay(
      [&](const store::Version& v) {
        store.insert(v);
        vv.raise(v.sr, v.ut);
      },
      [&](const VersionVector& snap_vv) { vv.merge_max(snap_vv); });
  const auto end = std::chrono::steady_clock::now();
  r.ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.versions = stats.snapshot_versions + stats.log_versions;
  return r;
}

ReplayResult run_point(const std::string& name, std::uint64_t records,
                       bool checkpoint_midway) {
  const std::string dir = fresh_dir(name);
  {
    wal::PartitionWal::Options opt;
    opt.checkpoint_bytes = 0;  // rotation only where the bench asks for it
    wal::PartitionWal wal(dir, opt);
    build_log(wal, records, checkpoint_midway);
  }
  ReplayResult r = measure_replay(dir);
  fs::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const ReplayResult r1k = run_point("log1k", 1'000, false);
  const ReplayResult r10k = run_point("log10k", 10'000, false);
  const ReplayResult r50k = run_point("log50k", 50'000, false);
  const ReplayResult r50k_snap = run_point("log50k_snap", 50'000, true);

  const double mb = static_cast<double>(r50k.bytes) / (1024.0 * 1024.0);
  const double mb_per_sec = r50k.ms > 0.0 ? mb / (r50k.ms / 1000.0) : 0.0;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"recovery\",\"seed\":%llu,"
      "\"replay_1k_ms\":%.2f,\"replay_10k_ms\":%.2f,\"replay_50k_ms\":%.2f,"
      "\"replay_50k_snap_ms\":%.2f,\"replay_50k_versions\":%llu,"
      "\"replay_mb\":%.2f,\"replay_mb_per_sec\":%.1f}",
      static_cast<unsigned long long>(kSeed), r1k.ms, r10k.ms, r50k.ms,
      r50k_snap.ms, static_cast<unsigned long long>(r50k.versions), mb,
      mb_per_sec);
  std::printf("%s\n", line);
  if (out_path != nullptr) {
    std::ofstream out(out_path);
    out << line << "\n";
  }
  return 0;
}
