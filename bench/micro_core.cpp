// Micro-benchmarks (google-benchmark) for the building blocks on the hot
// paths of the simulation and the protocol engines.
#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "store/key_space.hpp"
#include "store/partition_store.hpp"
#include "store/version_chain.hpp"
#include "vclock/version_vector.hpp"

namespace {

using namespace pocc;

void BM_VersionVectorMergeMax(benchmark::State& state) {
  VersionVector a{1, 2, 3};
  VersionVector b{3, 2, 1};
  for (auto _ : state) {
    a.merge_max(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VersionVectorMergeMax);

void BM_VersionVectorDominates(benchmark::State& state) {
  VersionVector a{100, 200, 300};
  VersionVector b{99, 200, 300};
  bool r = false;
  for (auto _ : state) {
    r ^= a.dominates(b, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VersionVectorDominates);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x ^= rng.next();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x ^= zipf.next(rng);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1'000'000);

// ------------------------------------------------------------ key interning

void BM_KeySpaceInternHit(benchmark::State& state) {
  // Steady-state intern: every key already interned (the workload hot path —
  // zipf re-touches a small hot set).
  auto& ks = store::KeySpace::global();
  Rng rng(11);
  for (std::uint64_t r = 0; r < 10'000; ++r) {
    ks.intern_partition_key(3, r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.intern_partition_key(3, rng.uniform(10'000)));
  }
}
BENCHMARK(BM_KeySpaceInternHit);

void BM_KeySpaceInternStringHit(benchmark::State& state) {
  // Intern from a pre-built string (manual-client boundary).
  auto& ks = store::KeySpace::global();
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back("7:" + std::to_string(i));
    ks.intern(keys.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks.intern(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_KeySpaceInternStringHit);

// ----------------------------------------------------------- store lookups

void BM_PartitionStoreInsertLookup(benchmark::State& state) {
  // Mixed insert + lookup through the full PartitionStore (flat KeyId map).
  // The probe key is drawn from the inserted distribution, so the lookup
  // measures the hit path.
  store::PartitionStore store;
  Rng rng(7);
  Timestamp t = 1;
  const KeyId probe = store::KeySpace::global().intern_partition_key(9, 42);
  for (auto _ : state) {
    store::Version v;
    v.key = store::KeySpace::global().intern_partition_key(
        9, rng.uniform(10'000));
    v.value = "12345678";
    v.ut = t++;
    v.dv = VersionVector(3);
    store.insert(std::move(v));
    benchmark::DoNotOptimize(store.find(probe));
  }
}
BENCHMARK(BM_PartitionStoreInsertLookup);

void BM_FlatStoreLookup(benchmark::State& state) {
  // Pure lookup against a pre-populated flat store.
  store::PartitionStore store;
  std::vector<KeyId> keys;
  for (std::uint64_t r = 0; r < 10'000; ++r) {
    store::Version v;
    v.key = store::KeySpace::global().intern_partition_key(5, r);
    v.value = "12345678";
    v.ut = static_cast<Timestamp>(r + 1);
    v.dv = VersionVector(3);
    keys.push_back(v.key);
    store.insert(std::move(v));
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.find(keys[rng.uniform(keys.size())]));
  }
}
BENCHMARK(BM_FlatStoreLookup);

void BM_UnorderedStringMapLookup(benchmark::State& state) {
  // The pre-interning baseline: the same lookup against
  // std::unordered_map<std::string, chain>, including the string build the
  // old data plane performed at each hop.
  std::unordered_map<std::string, store::VersionChain> map;
  for (std::uint64_t r = 0; r < 10'000; ++r) {
    map.try_emplace("5:" + std::to_string(r));
  }
  Rng rng(3);
  for (auto _ : state) {
    const std::string key = "5:" + std::to_string(rng.uniform(10'000));
    auto it = map.find(key);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK(BM_UnorderedStringMapLookup);

// ------------------------------------------------------------- version chains

void BM_VersionChainInsertFreshest(benchmark::State& state) {
  // The common replication case: versions arrive in timestamp order.
  store::VersionChain chain;
  Timestamp t = 1;
  store::Version v;
  v.key = store::intern_key("k");
  v.value = "12345678";
  v.dv = VersionVector(3);
  for (auto _ : state) {
    v.ut = t++;
    chain.insert(v);
    if (chain.size() > 64) {
      state.PauseTiming();
      chain.gc([](const store::Version&) { return true; });
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_VersionChainInsertFreshest);

void BM_ChainStableSearch(benchmark::State& state) {
  // Cure*'s per-GET cost: search for the freshest stable version in a chain
  // with `range` unstable versions at the head.
  store::VersionChain chain;
  const auto unstable = static_cast<Timestamp>(state.range(0));
  for (Timestamp t = 1; t <= unstable + 1; ++t) {
    store::Version v;
    v.key = store::intern_key("k");
    v.value = "12345678";
    v.ut = t * 100;
    v.sr = 1;
    v.dv = VersionVector(3);
    chain.insert(v);
  }
  const Timestamp gss = 100;  // only the oldest version is stable
  for (auto _ : state) {
    auto r = chain.freshest_where(
        [&](const store::Version& v) { return v.ut <= gss; });
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainStableSearch)->Arg(0)->Arg(4)->Arg(16);

// ---------------------------------------------------------------- event loop

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [] {});
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorScheduleRunPayload(benchmark::State& state) {
  // The realistic case: closures carry a message-sized payload. Pre-refactor
  // this forced one heap allocation per event (std::function's inline buffer
  // is 16 bytes); the inline-callable event loop stores it in place.
  struct Payload {
    char bytes[96] = {};
  };
  Payload p;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [p, &sink] { sink += static_cast<std::uint64_t>(p.bytes[0]); });
    }
    sim.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRunPayload);

void BM_SimulatorSteadyChurn(benchmark::State& state) {
  // Steady-state slot reuse: a deep queue with every pop scheduling a new
  // event (how the simulation actually runs — queue depth ~ in-flight
  // messages). Exercises the timing wheel (O(1) bucket append + bitmap-scan
  // pop + cascades) and slot recycling at depth `range`.
  const int depth = static_cast<int>(state.range(0));
  sim::Simulator sim;
  std::uint64_t fired = 0;
  // A self-rescheduling action keeps the queue at constant depth.
  struct Resched {
    sim::Simulator* s;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      s->schedule(100, Resched{s, fired});
    }
  };
  for (int i = 0; i < depth; ++i) {
    sim.schedule(i, Resched{&sim, &fired});
  }
  for (auto _ : state) {
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorSteadyChurn)->Arg(64)->Arg(4096);

void BM_CpuQueueSubmit(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::CpuQueue cpu(sim, 2);
    for (int i = 0; i < 1000; ++i) {
      cpu.submit([] { return Duration{10}; });
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CpuQueueSubmit);

// ------------------------------------------------------------------- stats

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  Rng rng(3);
  for (auto _ : state) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000)));
  }
  benchmark::DoNotOptimize(h);
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100'000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace

BENCHMARK_MAIN();
