// Micro-benchmarks (google-benchmark) for the building blocks on the hot
// paths of the simulation and the protocol engines.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/cpu_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "store/partition_store.hpp"
#include "store/version_chain.hpp"
#include "vclock/version_vector.hpp"

namespace {

using namespace pocc;

void BM_VersionVectorMergeMax(benchmark::State& state) {
  VersionVector a{1, 2, 3};
  VersionVector b{3, 2, 1};
  for (auto _ : state) {
    a.merge_max(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VersionVectorMergeMax);

void BM_VersionVectorDominates(benchmark::State& state) {
  VersionVector a{100, 200, 300};
  VersionVector b{99, 200, 300};
  bool r = false;
  for (auto _ : state) {
    r ^= a.dominates(b, 0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_VersionVectorDominates);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x ^= rng.next();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x ^= zipf.next(rng);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1'000'000);

void BM_VersionChainInsertFreshest(benchmark::State& state) {
  // The common replication case: versions arrive in timestamp order.
  store::VersionChain chain;
  Timestamp t = 1;
  store::Version v;
  v.key = "k";
  v.value = "12345678";
  v.dv = VersionVector(3);
  for (auto _ : state) {
    v.ut = t++;
    chain.insert(v);
    if (chain.size() > 64) {
      state.PauseTiming();
      chain.gc([](const store::Version&) { return true; });
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_VersionChainInsertFreshest);

void BM_ChainStableSearch(benchmark::State& state) {
  // Cure*'s per-GET cost: search for the freshest stable version in a chain
  // with `range` unstable versions at the head.
  store::VersionChain chain;
  const auto unstable = static_cast<Timestamp>(state.range(0));
  for (Timestamp t = 1; t <= unstable + 1; ++t) {
    store::Version v;
    v.key = "k";
    v.value = "12345678";
    v.ut = t * 100;
    v.sr = 1;
    v.dv = VersionVector(3);
    chain.insert(v);
  }
  const Timestamp gss = 100;  // only the oldest version is stable
  for (auto _ : state) {
    auto r = chain.freshest_where(
        [&](const store::Version& v) { return v.ut <= gss; });
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainStableSearch)->Arg(0)->Arg(4)->Arg(16);

void BM_PartitionStoreInsertLookup(benchmark::State& state) {
  store::PartitionStore store;
  Rng rng(7);
  Timestamp t = 1;
  for (auto _ : state) {
    store::Version v;
    v.key = "key" + std::to_string(rng.uniform(10'000));
    v.value = "12345678";
    v.ut = t++;
    v.dv = VersionVector(3);
    store.insert(std::move(v));
    benchmark::DoNotOptimize(store.find("key42"));
  }
}
BENCHMARK(BM_PartitionStoreInsertLookup);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [] {});
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_CpuQueueSubmit(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::CpuQueue cpu(sim, 2);
    for (int i = 0; i < 1000; ++i) {
      cpu.submit([] { return Duration{10}; });
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CpuQueueSubmit);

void BM_HistogramRecord(benchmark::State& state) {
  stats::Histogram h;
  Rng rng(3);
  for (auto _ : state) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000)));
  }
  benchmark::DoNotOptimize(h);
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  stats::Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100'000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace

BENCHMARK_MAIN();
