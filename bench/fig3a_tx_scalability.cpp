// Figure 3a — "Throughput while varying number of contacted partitions per
// transaction" (RO-TX(p) + random PUT workload, §V-C).
//
// Paper shape: POCC and Cure* are comparable at small p, with POCC generally
// slightly ahead; the gap grows (up to ~15%) when transactions touch the
// majority of the partitions, because POCC is more resource efficient (no
// stabilization, no chain search).
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 3a",
               "throughput vs partitions contacted per RO-TX", scale);

  print_row({"tx parts", "Cure* (Mops/s)", "POCC (Mops/s)", "POCC/Cure*"});
  print_csv_header("fig3a", {"tx_partitions", "cure_mops", "pocc_mops",
                             "ratio"});
  for (std::uint32_t p : scale.tx_partition_sweep()) {
    workload::WorkloadConfig wl = paper_workload();
    wl.pattern = workload::Pattern::kTxPut;
    wl.tx_partitions = p;
    double mops[2] = {0.0, 0.0};
    const cluster::SystemKind systems[2] = {cluster::SystemKind::kCure,
                                            cluster::SystemKind::kPocc};
    for (int s = 0; s < 2; ++s) {
      const auto cfg =
          paper_config(systems[s], scale.partitions(), /*seed=*/5000 + p);
      const auto m = run_point(cfg, wl, scale.saturating_clients(),
                               scale.warmup_us(), scale.measure_us());
      mops[s] = m.throughput_ops_per_sec;
    }
    print_row({std::to_string(p), fmt_mops(mops[0]), fmt_mops(mops[1]),
               fmt(mops[0] > 0 ? mops[1] / mops[0] : 0.0, 3)});
    print_csv_row({std::to_string(p), fmt_mops(mops[0]), fmt_mops(mops[1]),
                   fmt(mops[0] > 0 ? mops[1] / mops[0] : 0.0, 3)});
  }
  std::printf(
      "\nExpected shape (paper): POCC >= Cure*, the advantage growing with\n"
      "the number of contacted partitions (up to ~15%%).\n");
  return 0;
}
