// Figure 1a — "Throughput while varying the number of partitions."
//
// Workload (§V-B): GET:PUT = p:1 where p is the number of partitions; each
// GET targets a different partition, the PUT a uniformly random one. The
// paper reports that POCC and Cure* achieve essentially the same maximum
// throughput at every partition count.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Figure 1a",
               "max throughput vs #partitions (GET:PUT = p:1, zipf 0.99)",
               scale);

  print_row({"partitions", "Cure* (Mops/s)", "POCC (Mops/s)", "POCC/Cure*"});
  print_csv_header("fig1a",
                   {"partitions", "cure_mops", "pocc_mops", "ratio"});
  for (std::uint32_t parts : scale.partition_sweep()) {
    workload::WorkloadConfig wl = paper_workload();
    wl.gets_per_put = parts;  // GET:PUT ratio p:1

    double mops[2] = {0.0, 0.0};
    const cluster::SystemKind systems[2] = {cluster::SystemKind::kCure,
                                            cluster::SystemKind::kPocc};
    for (int s = 0; s < 2; ++s) {
      const auto cfg = paper_config(systems[s], parts, /*seed=*/1000 + parts);
      const auto m = run_point(cfg, wl, scale.saturating_clients(),
                               scale.warmup_us(), scale.measure_us());
      mops[s] = m.throughput_ops_per_sec;
    }
    const double ratio = mops[0] > 0 ? mops[1] / mops[0] : 0.0;
    print_row({std::to_string(parts), fmt_mops(mops[0]), fmt_mops(mops[1]),
               fmt(ratio, 3)});
    print_csv_row({std::to_string(parts), fmt_mops(mops[0]),
                   fmt_mops(mops[1]), fmt(ratio, 3)});
  }
  std::printf(
      "\nExpected shape (paper): the two systems achieve basically the same\n"
      "throughput at every partition count; throughput grows with partitions.\n");
  return 0;
}
