// Ablation — Cure* stabilization period (§V-B).
//
// The paper notes that a longer stabilization period lets Cure* reach higher
// throughput (less protocol overhead) at the cost of increased staleness —
// and that "POCC is immune to this trade-off". This harness sweeps the GSS
// period for Cure* and prints a POCC reference line.
#include "bench_util.hpp"

using namespace pocc;
using namespace pocc::bench;

int main() {
  const Scale scale = scale_from_env();
  print_banner("Ablation: stabilization period",
               "Cure* staleness/throughput vs GSS period (POCC immune)",
               scale);

  workload::WorkloadConfig wl = paper_workload();
  wl.gets_per_put = 8;
  wl.think_time_us = 10'000;

  const Duration sweep[] = {1'000, 5'000, 10'000, 25'000, 50'000};
  print_row({"period (ms)", "system", "Mops/s", "% old", "% unmerged",
             "stab msgs"});
  print_csv_header("abl_stabilization", {"period_ms", "system", "mops",
                                         "pct_old", "pct_unmerged",
                                         "stab_messages"});
  for (Duration period : sweep) {
    auto cfg = paper_config(cluster::SystemKind::kCure, scale.partitions(),
                            /*seed=*/9100 + period);
    cfg.protocol.stabilization_interval_us = period;
    const auto m = run_point(cfg, wl, 96, scale.warmup_us(),
                             scale.measure_us());
    print_row({fmt(static_cast<double>(period) / 1e3, 3), "Cure*",
               fmt_mops(m.throughput_ops_per_sec),
               fmt(m.staleness.pct_old(), 3),
               fmt(m.staleness.pct_unmerged(), 3),
               std::to_string(m.network.stabilization_messages)});
    print_csv_row({fmt(static_cast<double>(period) / 1e3, 3), "Cure*",
                   fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.staleness.pct_old(), 3),
                   fmt(m.staleness.pct_unmerged(), 3),
                   std::to_string(m.network.stabilization_messages)});
  }
  {
    const auto cfg = paper_config(cluster::SystemKind::kPocc,
                                  scale.partitions(), /*seed=*/9199);
    const auto m = run_point(cfg, wl, 96, scale.warmup_us(),
                             scale.measure_us());
    print_row({"-", "POCC", fmt_mops(m.throughput_ops_per_sec),
               fmt(m.staleness.pct_old(), 3), "0",
               std::to_string(m.network.stabilization_messages)});
    print_csv_row({"0", "POCC", fmt_mops(m.throughput_ops_per_sec),
                   fmt(m.staleness.pct_old(), 3), "0",
                   std::to_string(m.network.stabilization_messages)});
  }
  std::printf(
      "\nExpected: Cure* staleness grows with the period; POCC reads stay\n"
      "fresh with zero stabilization traffic.\n");
  return 0;
}
