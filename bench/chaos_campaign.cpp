// Chaos soak over the REAL TCP deployment, in one process.
//
// Where bench/fuzz_campaign drives the simulator's fault fabric, this runner
// drives the deployment classes poccd is built from — TcpNodeHost per DC
// behind real localhost sockets, TcpClientPool sessions with the resilience
// layer on — while net::ChaosLink degrades the actual wire: replication
// links get seed-deterministic delay/jitter/loss-stall/reorder plus the
// timed partition windows of a fault::FaultPlan schedule; client links
// additionally get duplicate frames and spontaneous resets (exercising the
// server's op_id idempotency cache end to end). The schedule's kCrash
// windows are executed for real: the victim host is crash_stop()ped
// (kill -9 equivalent — unsynced WAL tail and staged batches die) and
// restarted on the same port + data dir, so every run crosses WAL replay
// and the peer recovery handshake.
//
// Pass criteria (exit 1 on any miss):
//   * the full client history replays through the HistoryChecker with ZERO
//     causal-consistency violations — always, no matter the chaos;
//   * the replay is complete, unless ops were abandoned mid-disruption (an
//     applied PUT whose reply died with a crash leaves an unregistered
//     version — the loadgen's --expect-disruption rationale);
//   * the op failure rate stays within --failure-budget;
//   * at least some work completed (a wedged cluster must not pass).
//
// Determinism: --seed fixes the fault schedule (the plan hash is printed
// and embedded in the artifact, exactly like the fuzz repro line). Wall
// clock interleaving of course varies run to run; the *schedule* does not.
//
//   chaos_campaign [--seed N] [--system pocc|cure|ha_pocc] [--duration-s S]
//                  [--horizon-s S] [--sessions N] [--no-crashes]
//                  [--failure-budget F] [--out FILE] [--verbose]
//
// CI runs this nightly with a date-derived seed next to the fuzz campaign;
// scripts/chaos_soak.sh covers the same chaos across real process
// boundaries via pocc_chaosproxy.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "checker/history_checker.hpp"
#include "common/rng.hpp"
#include "net/chaos.hpp"
#include "net/tcp_client.hpp"
#include "net/tcp_node_host.hpp"
#include "runtime/rt_node.hpp"

namespace {

using namespace pocc;

struct Options {
  std::uint64_t seed = 1;
  rt::System system = rt::System::kPocc;
  double duration_s = 8.0;
  double horizon_s = 4.0;
  int sessions_per_dc = 3;
  bool crashes = true;
  double failure_budget = 0.05;
  Duration op_deadline_us = 15'000'000;
  std::string out_path;
  bool verbose = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--system pocc|cure|ha_pocc] [--duration-s S]\n"
      "          [--horizon-s S] [--sessions N] [--no-crashes]\n"
      "          [--failure-budget F] [--op-deadline-us N] [--out FILE]\n"
      "          [--verbose]\n",
      argv0);
  return 4;
}

net::ClusterLayout chaos_layout(rt::System system) {
  net::ClusterLayout layout;
  layout.topology.num_dcs = 3;
  layout.topology.partitions_per_dc = 2;
  layout.topology.partition_scheme = PartitionScheme::kHash;
  layout.system = system;
  layout.protocol.heartbeat_interval_us = 5'000;
  layout.protocol.stabilization_interval_us = 20'000;
  layout.protocol.gc_interval_us = 200'000;
  layout.protocol.block_timeout_us = 2'000'000;
  return layout;
}

/// Stationary degradation of the server-to-server links (the schedule
/// layers partitions and degrade windows on top).
net::ChaosProfile server_profile() {
  net::ChaosProfile p;
  p.base_delay_us = 2'000;
  p.jitter_mean_us = 1'000;
  p.loss_p = 0.01;
  p.rto_penalty_us = 50'000;
  p.reorder_window_us = 2'000;
  p.bandwidth_bytes_per_s = 0;  // partitions + loss stalls dominate
  return p;
}

/// Client links: mild delay, but duplicates and resets — the pointy end of
/// the idempotent-retry machinery.
net::ChaosProfile client_profile() {
  net::ChaosProfile p;
  p.base_delay_us = 300;
  p.jitter_mean_us = 300;
  p.dup_p = 0.02;
  p.reset_p = 0.001;
  return p;
}

struct OpCounters {
  std::atomic<std::uint64_t> gets{0}, puts{0}, txs{0}, failures{0};
};

/// One closed-loop mixed-workload session until `stop`.
void drive_session(net::TcpSession& s, std::uint64_t seed, Duration deadline,
                   std::atomic<bool>& stop, OpCounters& ops) {
  Rng rng(seed);
  std::uint64_t n = 0;
  const auto some_key = [&rng] {
    std::string key = "chaos:";
    key += std::to_string(rng.uniform(16));
    return key;
  };
  while (!stop.load(std::memory_order_relaxed)) {
    const std::string key = some_key();
    const std::uint64_t kind = rng.uniform(10);
    if (kind < 5) {
      if (s.get(key, deadline).ok) ++ops.gets; else ++ops.failures;
    } else if (kind < 9) {
      std::string value = "v";
      value += std::to_string(++n);
      if (s.put(key, std::move(value), deadline).ok) ++ops.puts;
      else ++ops.failures;
    } else {
      if (s.ro_tx({key, some_key()}, deadline).ok) ++ops.txs;
      else ++ops.failures;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(4);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (std::strcmp(argv[i], "--system") == 0) {
      const auto system = net::parse_system(value());
      if (!system.has_value()) return usage(argv[0]);
      opt.system = *system;
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      opt.duration_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--horizon-s") == 0) {
      opt.horizon_s = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      opt.sessions_per_dc = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-crashes") == 0) {
      opt.crashes = false;
    } else if (std::strcmp(argv[i], "--failure-budget") == 0) {
      opt.failure_budget = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--op-deadline-us") == 0) {
      opt.op_deadline_us = std::strtol(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out_path = value();
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  net::ClusterLayout layout = chaos_layout(opt.system);
  const auto& topo = layout.topology;
  const auto schedule = std::make_shared<const net::ChaosSchedule>(
      opt.seed, topo, static_cast<Duration>(opt.horizon_s * 1e6),
      static_cast<Duration>(opt.duration_s * 1e6));
  std::printf("chaos_campaign: system=%s seed=%llu plan=0x%llx "
              "duration=%.1fs crashes=%zu%s\n",
              net::system_name(opt.system),
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(schedule->plan_hash()),
              opt.duration_s, schedule->crashes().size(),
              opt.crashes ? "" : " (not executed)");
  if (opt.verbose) std::printf("%s", schedule->plan_text().c_str());

  // Durable roots: every host gets one so crash windows cross real WAL
  // replay on restart.
  namespace fs = std::filesystem;
  const fs::path data_root =
      fs::temp_directory_path() /
      ("pocc_chaos_" + std::to_string(::getpid()) + "_" +
       std::to_string(opt.seed));
  fs::create_directories(data_root);

  // --- cluster: one multi-partition host per DC (the poccd topology) ---
  std::vector<std::unique_ptr<net::TcpNodeHost>> hosts;
  std::vector<std::uint16_t> ports;
  const auto host_options = [&](DcId dc) {
    net::TcpNodeHost::Options ho;
    ho.listen_port = dc < ports.size() ? ports[dc] : 0;
    ho.seed = opt.seed * 31 + dc;
    ho.data_dir = (data_root / ("dc" + std::to_string(dc))).string();
    ho.max_inbox_messages = 4096;  // bounded admission under chaos
    return ho;
  };
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    net::ProcessSpec spec;
    spec.dc = dc;
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      spec.parts.push_back(p);
    }
    spec.threads = 2;
    spec.host = "127.0.0.1";
    hosts.push_back(
        std::make_unique<net::TcpNodeHost>(spec, layout, host_options(dc)));
    spec.port = hosts.back()->port();
    ports.push_back(spec.port);
    layout.processes.push_back(spec);
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      layout.nodes.push_back(
          net::NodeAddress{NodeId{dc, p}, "127.0.0.1", spec.port});
    }
  }
  for (auto& host : hosts) host->start(layout.processes);

  // Arm the replication links. Every directed (src, dst) pair gets its own
  // deterministic ChaosLink bound to the shared schedule; chaos time 0 is
  // now.
  const Timestamp chaos_start = rt::steady_now_us();
  const auto arm_host = [&](DcId src) {
    for (DcId dst = 0; dst < topo.num_dcs; ++dst) {
      if (dst == src) continue;
      auto link = std::make_shared<net::ChaosLink>(
          opt.seed ^ (0x9e3779b97f4a7c15ULL * (src * 16 + dst + 1)),
          server_profile());
      link->bind_schedule(schedule, src, dst, chaos_start);
      hosts[src]->arm_chaos(dst, std::move(link));
    }
  };
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) arm_host(dc);

  // --- client pools: resilience ON, chaos on the client links too ---
  std::vector<std::unique_ptr<net::TcpClientPool>> pools;
  std::uint64_t client_link_n = 0;
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    pools.push_back(std::make_unique<net::TcpClientPool>(layout, dc));
    net::ClientResilience res;
    res.enabled = true;
    pools.back()->set_resilience(res);
    pools.back()->start();
    if (!pools.back()->wait_connected(10'000'000)) {
      std::fprintf(stderr, "chaos_campaign: pool %u never connected\n", dc);
      return 1;
    }
    for (PartitionId p = 0; p < topo.partitions_per_dc; ++p) {
      for (unsigned replica = 0; replica < 2; ++replica) {
        const net::ConnId conn = pools.back()->conn_of(p, replica);
        if (conn == net::kInvalidConn) continue;
        pools.back()->transport().set_chaos(
            conn, std::make_shared<net::ChaosLink>(
                      opt.seed ^ (0xc11e47'0000ULL + ++client_link_n),
                      client_profile()));
      }
    }
  }

  // --- load ---
  std::atomic<bool> stop{false};
  OpCounters ops;
  std::vector<std::thread> threads;
  ClientId next_client = 1;
  for (DcId dc = 0; dc < topo.num_dcs; ++dc) {
    for (int i = 0; i < opt.sessions_per_dc; ++i) {
      net::TcpSession& s = pools[dc]->connect(next_client++);
      threads.emplace_back([&, dc, i] {
        drive_session(s, (static_cast<std::uint64_t>(dc) << 8) | i,
                      opt.op_deadline_us, stop, ops);
      });
    }
  }

  // --- controller: execute the schedule's crash windows for real ---
  std::uint64_t crashes_executed = 0;
  const auto until = [&](Timestamp chaos_t) {
    const Timestamp now = rt::steady_now_us() - chaos_start;
    if (chaos_t > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(chaos_t - now));
    }
  };
  if (opt.crashes) {
    for (const net::ChaosSchedule::CrashWindow& w : schedule->crashes()) {
      if (w.at >= static_cast<Duration>(opt.duration_s * 1e6)) break;
      until(w.at);
      const DcId dc = w.node.dc;
      if (opt.verbose) {
        std::printf("chaos_campaign: crashing dc%u for %lld us\n", dc,
                    static_cast<long long>(w.duration));
      }
      hosts[dc]->crash_stop();
      hosts[dc].reset();
      until(w.at + w.duration);
      net::ProcessSpec spec = layout.processes[dc];
      spec.port = 0;  // the option carries the bind port
      hosts[dc] = std::make_unique<net::TcpNodeHost>(spec, layout,
                                                     host_options(dc));
      if (hosts[dc]->port() != ports[dc]) {
        std::fprintf(stderr, "chaos_campaign: dc%u lost its port on restart\n",
                     dc);
        return 1;
      }
      hosts[dc]->start(layout.processes);
      arm_host(dc);
      ++crashes_executed;
    }
  }
  until(static_cast<Duration>(opt.duration_s * 1e6));
  stop.store(true);
  for (auto& t : threads) t.join();

  // --- verdict ---
  net::ClientResilienceStats rstats;
  std::vector<checker::SessionHistory> histories;
  for (auto& pool : pools) {
    rstats += pool->resilience_stats();
    auto h = pool->histories();
    histories.insert(histories.end(), h.begin(), h.end());
  }
  std::uint64_t overloaded_replies = 0, deduped = 0;
  std::uint64_t batch_retries = 0, batch_drops = 0;
  std::uint64_t chaos_delayed = 0, chaos_dups = 0, chaos_resets = 0;
  for (const auto& host : hosts) {
    overloaded_replies += host->overloaded_replies();
    deduped += host->deduped_requests();
    batch_retries += host->batch_stats().retried_batches;
    batch_drops += host->batch_stats().dropped_batches;
    const net::TransportStats ts = host->transport_stats();
    chaos_delayed += ts.chaos_delayed;
    chaos_dups += ts.chaos_duplicates;
    chaos_resets += ts.chaos_resets;
  }
  for (const auto& pool : pools) {
    const net::TransportStats ts = pool->transport_stats();
    chaos_delayed += ts.chaos_delayed;
    chaos_dups += ts.chaos_duplicates;
    chaos_resets += ts.chaos_resets;
  }

  checker::HistoryChecker checker(topo.num_dcs);
  const auto replay = checker::replay_history(histories, checker);
  const std::uint64_t violations = checker.violations().size();
  const std::uint64_t completed =
      ops.gets.load() + ops.puts.load() + ops.txs.load();
  const std::uint64_t failures = ops.failures.load();
  const double failure_rate =
      completed + failures == 0
          ? 1.0
          : static_cast<double>(failures) / (completed + failures);

  bool ok = true;
  if (violations > 0) {
    ok = false;
    std::fprintf(stderr, "chaos_campaign: %llu VIOLATIONS, first: %s\n",
                 static_cast<unsigned long long>(violations),
                 checker.violations().front().c_str());
  }
  // An incomplete replay is only legitimate when ops were actually
  // abandoned mid-disruption; with zero failures it means lost history.
  if (!replay.complete && failures == 0) {
    ok = false;
    std::fprintf(stderr, "chaos_campaign: incomplete replay with no failed "
                         "ops — %s\n",
                 replay.error.c_str());
  }
  if (completed == 0) {
    ok = false;
    std::fprintf(stderr, "chaos_campaign: no operation completed\n");
  }
  if (failure_rate > opt.failure_budget) {
    ok = false;
    std::fprintf(stderr,
                 "chaos_campaign: failure budget breached — %.4f of ops "
                 "failed (budget %.4f)\n",
                 failure_rate, opt.failure_budget);
  }

  std::printf(
      "[%s] ops=%llu failures=%llu rate=%.4f retries=%llu timeouts=%llu "
      "failovers=%llu overloaded=%llu deduped=%llu breaker_opens=%llu "
      "crashes=%llu chaos(delayed=%llu dups=%llu resets=%llu) "
      "batch(retries=%llu drops=%llu) checks=%llu violations=%llu "
      "complete=%d\n",
      ok ? "ok" : "FAIL", static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failures), failure_rate,
      static_cast<unsigned long long>(rstats.retries),
      static_cast<unsigned long long>(rstats.timeouts),
      static_cast<unsigned long long>(rstats.failovers),
      static_cast<unsigned long long>(overloaded_replies),
      static_cast<unsigned long long>(deduped),
      static_cast<unsigned long long>(rstats.breaker_opens),
      static_cast<unsigned long long>(crashes_executed),
      static_cast<unsigned long long>(chaos_delayed),
      static_cast<unsigned long long>(chaos_dups),
      static_cast<unsigned long long>(chaos_resets),
      static_cast<unsigned long long>(batch_retries),
      static_cast<unsigned long long>(batch_drops),
      static_cast<unsigned long long>(checker.checks_performed()),
      static_cast<unsigned long long>(violations), replay.complete ? 1 : 0);
  if (!ok) {
    std::printf("    REPRO: chaos_campaign --system %s --seed %llu "
                "--duration-s %.1f --horizon-s %.1f --sessions %d%s\n",
                net::system_name(opt.system),
                static_cast<unsigned long long>(opt.seed), opt.duration_s,
                opt.horizon_s, opt.sessions_per_dc,
                opt.crashes ? "" : " --no-crashes");
  }

  if (!opt.out_path.empty()) {
    std::FILE* f = std::fopen(opt.out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\"bench\":\"chaos_campaign\",\"system\":\"%s\",\"seed\":%llu,"
          "\"plan_hash\":\"0x%llx\",\"duration_s\":%.2f,\"sessions\":%d,"
          "\"ops\":%llu,\"failures\":%llu,\"failure_rate\":%.4f,"
          "\"op_retries\":%llu,\"op_timeouts\":%llu,\"op_failovers\":%llu,"
          "\"op_overloaded\":%llu,\"deduped\":%llu,\"breaker_opens\":%llu,"
          "\"deadline_exhausted\":%llu,\"crashes\":%llu,"
          "\"chaos_delayed\":%llu,\"chaos_duplicates\":%llu,"
          "\"chaos_resets\":%llu,\"batch_retries\":%llu,\"batch_drops\":%llu,"
          "\"checks\":%llu,\"violations\":%llu,\"complete\":%s,\"ok\":%s}\n",
          net::system_name(opt.system),
          static_cast<unsigned long long>(opt.seed),
          static_cast<unsigned long long>(schedule->plan_hash()),
          opt.duration_s, opt.sessions_per_dc,
          static_cast<unsigned long long>(completed),
          static_cast<unsigned long long>(failures), failure_rate,
          static_cast<unsigned long long>(rstats.retries),
          static_cast<unsigned long long>(rstats.timeouts),
          static_cast<unsigned long long>(rstats.failovers),
          static_cast<unsigned long long>(rstats.overloaded),
          static_cast<unsigned long long>(deduped),
          static_cast<unsigned long long>(rstats.breaker_opens),
          static_cast<unsigned long long>(rstats.deadline_exhausted),
          static_cast<unsigned long long>(crashes_executed),
          static_cast<unsigned long long>(chaos_delayed),
          static_cast<unsigned long long>(chaos_dups),
          static_cast<unsigned long long>(chaos_resets),
          static_cast<unsigned long long>(batch_retries),
          static_cast<unsigned long long>(batch_drops),
          static_cast<unsigned long long>(checker.checks_performed()),
          static_cast<unsigned long long>(violations),
          replay.complete ? "true" : "false", ok ? "true" : "false");
      std::fclose(f);
    }
  }

  for (auto& pool : pools) pool->stop();
  for (auto& host : hosts) {
    if (host != nullptr) host->stop();
  }
  std::error_code ec;
  fs::remove_all(data_root, ec);
  return ok ? 0 : 1;
}
